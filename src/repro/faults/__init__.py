"""Deterministic fault injection and resilience (``repro.faults``).

The fault plane declares *what goes wrong* — spot-style instance preemption
windows, per-request offload failure probabilities, degraded-network windows
and control-plane staleness — as plain data on a
:class:`~repro.faults.spec.FaultSpec` hung off a scenario.  The resilience
plane declares *how the system answers*: a
:class:`~repro.faults.spec.RetryPolicy` (attempts, timeout, exponential
backoff with jitter, optional cross-site failover) and graceful degradation
to on-device execution when retries are exhausted.

Every fault draw comes from a dedicated named stream
(:data:`~repro.faults.overlay.FAULT_STREAM`), so enabling faults never
perturbs the base request plan, and the whole fault/retry ladder is
pre-computed as a per-request overlay (:mod:`repro.faults.overlay`) that both
execution modes consume identically — fault decisions are never part of the
event/batched queueing approximation.
"""

from repro.faults.overlay import (
    FAULT_CONTROL_STREAM,
    FAULT_STREAM,
    OUTCOME_DEGRADED_LOCAL,
    OUTCOME_DROPPED,
    OUTCOME_OK,
    FaultOverlay,
    MultisiteFaultPlane,
    build_fault_overlay,
)
from repro.faults.spec import (
    ControlPlaneFaults,
    DegradedWindow,
    FaultSpec,
    PreemptionWindow,
    RetryPolicy,
)

__all__ = [
    "FAULT_CONTROL_STREAM",
    "FAULT_STREAM",
    "OUTCOME_DEGRADED_LOCAL",
    "OUTCOME_DROPPED",
    "OUTCOME_OK",
    "ControlPlaneFaults",
    "DegradedWindow",
    "FaultOverlay",
    "FaultSpec",
    "MultisiteFaultPlane",
    "PreemptionWindow",
    "RetryPolicy",
    "build_fault_overlay",
]
