"""repro — reproduction of "Modeling Mobile Code Acceleration in the Cloud".

This package reimplements the system described in Flores et al., *Modeling
Mobile Code Acceleration in the Cloud* (IEEE ICDCS 2017): a software-defined
code-offloading architecture in which mobile devices offload computational
tasks to cloud instances organised into *acceleration groups*, and an adaptive
model that predicts the per-group workload of the next provisioning period
(edit-distance nearest-slot search over the request history) and allocates the
cheapest instance mix able to serve it (integer linear programming).

Package layout
--------------
``repro.core``
    The paper's contribution: time slots, edit-distance workload prediction,
    ILP resource allocation, acceleration-level characterization and the
    combined :class:`~repro.core.model.AdaptiveModel`.
``repro.simulation``
    Deterministic discrete-event simulation kernel (clock, engine, queues,
    random streams, statistics).
``repro.cloud``
    Instance catalog, calibrated performance profiles, simulated instance
    servers, provisioning/billing, back-end pool.
``repro.network``
    3G/LTE latency models, the synthetic NetRadar dataset, the
    ``T1 + T2 + T_cloud`` response-time decomposition.
``repro.mobile``
    Offloadable task pool (with real algorithm implementations), device
    profiles, battery model and the client-side moderator with its promotion
    policies.
``repro.workload``
    Request trace log, arrival processes, concurrent and inter-arrival
    workload generators, the synthetic smartphone usage study.
``repro.sdn``
    The SDN-accelerator front-end (request handling, routing, logging) and the
    predictive autoscaling control loop.
``repro.analysis``
    Instance benchmarking, predictor cross-validation and shared metrics.
``repro.experiments``
    One runner per evaluation figure of the paper (Fig. 4–11).
``repro.scenarios``
    Declarative scenario engine: :class:`~repro.scenarios.spec.ScenarioSpec`
    composes the layers above into runnable simulations (flash crowds,
    diurnal cycles, price spikes, ...), and the parallel
    :class:`~repro.scenarios.campaign.CampaignRunner` compares many scenarios
    in one table.
``repro.baselines``
    Round-robin routing, static/over-provisioning, greedy allocation, reactive
    autoscaling and naive predictors.

Quick start
-----------
>>> from repro import AdaptiveModel, InstanceOption, TimeSlot
>>> options = [
...     InstanceOption("t2.nano", acceleration_group=1, cost_per_hour=0.0063, capacity=10),
...     InstanceOption("t2.large", acceleration_group=2, cost_per_hour=0.101, capacity=40),
... ]
>>> model = AdaptiveModel(options)
>>> model.observe_slot(TimeSlot.from_counts(0, {1: 12, 2: 5}))
>>> model.observe_slot(TimeSlot.from_counts(1, {1: 18, 2: 9}))
>>> decision = model.decide()
>>> decision.plan.total_instances >= 1
True
"""

from repro.cloud.catalog import DEFAULT_CATALOG, InstanceCatalog, InstanceType, get_instance_type
from repro.core.acceleration import AccelerationGroup, characterize_instances
from repro.core.allocation import (
    AllocationPlan,
    AllocationProblem,
    IlpAllocator,
    InstanceOption,
    build_options_from_catalog,
)
from repro.core.model import AdaptiveModel, ModelDecision
from repro.core.prediction import WorkloadPredictor, prediction_accuracy
from repro.core.timeslots import TimeSlot, TimeSlotHistory
from repro.mobile.tasks import DEFAULT_TASK_POOL, OffloadableTask, TaskPool
from repro.scenarios import (
    CampaignRunner,
    ScenarioResult,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.sdn.accelerator import SDNAccelerator
from repro.workload.traces import TraceLog, TraceRecord

__version__ = "1.0.0"

__all__ = [
    "AccelerationGroup",
    "AdaptiveModel",
    "AllocationPlan",
    "AllocationProblem",
    "CampaignRunner",
    "DEFAULT_CATALOG",
    "DEFAULT_TASK_POOL",
    "IlpAllocator",
    "InstanceCatalog",
    "InstanceOption",
    "InstanceType",
    "ModelDecision",
    "OffloadableTask",
    "SDNAccelerator",
    "ScenarioResult",
    "ScenarioSpec",
    "TaskPool",
    "TimeSlot",
    "TimeSlotHistory",
    "TraceLog",
    "TraceRecord",
    "WorkloadPredictor",
    "build_options_from_catalog",
    "characterize_instances",
    "get_instance_type",
    "get_scenario",
    "prediction_accuracy",
    "run_scenario",
    "scenario_names",
    "__version__",
]
