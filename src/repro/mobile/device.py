"""Mobile device profiles and the simulated device actor.

The paper motivates the system with the diversity of mobile hardware: "complex
routines like decision making algorithms (e.g. minimax and nqueens) can be
computed easily by last generation smartphones but can be expensive to compute
on older devices and wearables".  A :class:`DeviceProfile` captures that
heterogeneity as a local execution speed relative to a level-1 cloud core, so
local execution time and offloading benefit can both be computed.

:class:`MobileDevice` is the stateful per-user actor used by the experiments:
it holds the device profile, battery, current acceleration group and the
moderator that decides promotions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.mobile.battery import BatteryModel
from repro.mobile.tasks import OffloadableTask


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware class of a mobile device.

    ``local_speed_factor`` expresses the device's single-core execution speed
    relative to a level-1 cloud core (1.0): a flagship phone is close to the
    cloud core, an older phone much slower and a wearable slower still.
    """

    name: str
    local_speed_factor: float
    cores: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device profile name must be non-empty")
        if self.local_speed_factor <= 0:
            raise ValueError(
                f"local_speed_factor must be positive, got {self.local_speed_factor}"
            )
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    def local_execution_time_ms(self, work_units: float) -> float:
        """Time to execute a task locally (single-threaded) on this device."""
        if work_units <= 0:
            raise ValueError(f"work_units must be positive, got {work_units}")
        return work_units / self.local_speed_factor


#: Representative device classes, from wearables to flagship smartphones.
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "wearable": DeviceProfile(name="wearable", local_speed_factor=0.08, cores=1),
    "budget-phone": DeviceProfile(name="budget-phone", local_speed_factor=0.25, cores=4),
    "mid-range-phone": DeviceProfile(name="mid-range-phone", local_speed_factor=0.45, cores=6),
    "flagship-phone": DeviceProfile(name="flagship-phone", local_speed_factor=0.8, cores=8),
    "tablet": DeviceProfile(name="tablet", local_speed_factor=0.6, cores=8),
}


@dataclass
class MobileDevice:
    """The per-user client state tracked during an experiment."""

    user_id: int
    profile: DeviceProfile
    acceleration_group: int
    battery: BatteryModel = field(default_factory=BatteryModel)
    response_times_ms: List[float] = field(default_factory=list)
    promotions: List[float] = field(default_factory=list)
    requests_sent: int = 0
    requests_failed: int = 0

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be >= 0, got {self.user_id}")
        if self.acceleration_group < 0:
            raise ValueError(
                f"acceleration_group must be >= 0, got {self.acceleration_group}"
            )

    def record_response(self, response_time_ms: float) -> None:
        """Record a completed request's perceived response time."""
        if response_time_ms < 0:
            raise ValueError(f"response_time_ms must be >= 0, got {response_time_ms}")
        self.response_times_ms.append(response_time_ms)
        self.battery.drain_offload(response_time_ms)

    def record_responses(self, response_times_ms: "np.ndarray") -> None:
        """Record a whole batch of response times in one vectorised step.

        Equivalent to calling :meth:`record_response` per value: the battery
        drain is linear in connection-open time, so draining once by the batch
        total lands on exactly the same level as draining per request.
        """
        values = np.asarray(response_times_ms, dtype=float)
        if values.size == 0:
            return
        if np.any(values < 0):
            bad = float(values[values < 0][0])
            raise ValueError(f"response_time_ms must be >= 0, got {bad}")
        self.response_times_ms.extend(values.tolist())
        self.battery.drain_offload(float(values.sum()))

    def record_failure(self) -> None:
        """Record a dropped request."""
        self.requests_failed += 1

    def record_failures(self, count: int) -> None:
        """Record ``count`` dropped requests at once."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.requests_failed += count

    def promote(self, new_group: int, at_ms: float) -> None:
        """Move the device to a higher acceleration group."""
        if new_group <= self.acceleration_group:
            raise ValueError(
                f"promotion must increase the group: {self.acceleration_group} -> {new_group}"
            )
        self.acceleration_group = new_group
        self.promotions.append(at_ms)

    def recent_mean_response_ms(self, window: int = 5) -> Optional[float]:
        """Mean of the last ``window`` response times, or None if no data."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not self.response_times_ms:
            return None
        recent = self.response_times_ms[-window:]
        return float(np.mean(recent))

    def local_execution_time_ms(self, task: OffloadableTask) -> float:
        """Time this device would need to run ``task`` locally."""
        return self.profile.local_execution_time_ms(task.work_units)

    def should_offload(self, task: OffloadableTask, expected_remote_ms: float) -> bool:
        """The classic offloading decision rule (Section II-A).

        A smartphone delegates a task if and only if the effort to delegate is
        less than the effort to process it locally; here both sides are
        expressed in expected elapsed time.
        """
        if expected_remote_ms < 0:
            raise ValueError(f"expected_remote_ms must be >= 0, got {expected_remote_ms}")
        return expected_remote_ms < self.local_execution_time_ms(task)
