"""Mobile substrate.

Models the client side of the offloading architecture:

* :mod:`repro.mobile.tasks` — the pool of offloadable computational tasks
  (minimax, n-queens, quicksort, ...).  Each task is both *really executable*
  (a pure-Python implementation, used by the examples and tests) and carries a
  calibrated work-unit cost used by the discrete-event simulation.
* :mod:`repro.mobile.device` — a mobile device profile (hardware class, local
  execution speed, battery) and the simulated device actor that issues
  offloading requests.
* :mod:`repro.mobile.moderator` — the client-side *moderator* component of the
  paper: it monitors perceived response times and promotes the device to a
  higher acceleration group when quality degrades (the paper evaluates a
  static 1/50 promotion probability; a response-time-threshold policy and a
  battery-aware policy are provided as the future-work extensions discussed in
  Section VII).
* :mod:`repro.mobile.battery` — a simple battery drain model used by the
  battery-aware promotion policy and recorded in the request traces.
"""

from repro.mobile.battery import BatteryModel
from repro.mobile.device import DeviceProfile, MobileDevice, DEVICE_PROFILES
from repro.mobile.energy import EnergyModel, lte_energy_model, three_g_energy_model
from repro.mobile.moderator import (
    BatteryAwarePolicy,
    Moderator,
    PromotionDecision,
    PromotionPolicy,
    ResponseTimeThresholdPolicy,
    StaticProbabilityPolicy,
)
from repro.mobile.tasks import (
    DEFAULT_TASK_POOL,
    OffloadableTask,
    TaskPool,
    TaskRequest,
    build_default_task_pool,
)

__all__ = [
    "BatteryAwarePolicy",
    "BatteryModel",
    "DEFAULT_TASK_POOL",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "EnergyModel",
    "MobileDevice",
    "Moderator",
    "OffloadableTask",
    "PromotionDecision",
    "PromotionPolicy",
    "ResponseTimeThresholdPolicy",
    "StaticProbabilityPolicy",
    "TaskPool",
    "TaskRequest",
    "build_default_task_pool",
    "lte_energy_model",
    "three_g_energy_model",
]
