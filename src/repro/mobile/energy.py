"""Device energy model for local execution vs offloading.

The paper keeps the latency/energy trade-off out of scope (Section VII-2) but
its motivation — "the ultimate goal of the technique is to reduce the overall
amount of processing of the device to extend battery life" (Section II-A) —
and its battery-aware future-work policy both need an energy model.  This
module provides a standard linear power model:

* local execution drains ``compute_power_watts`` for the task's local runtime;
* offloading drains ``radio_power_watts`` (3G or LTE) while the connection is
  open (the request's response time) plus ``idle_power_watts`` as a baseline;
* the classic energy-based offloading condition compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobile.device import DeviceProfile
from repro.mobile.tasks import OffloadableTask

#: Typical smartphone power draws in watts (order-of-magnitude literature values).
DEFAULT_COMPUTE_POWER_W = 2.2
DEFAULT_LTE_RADIO_POWER_W = 1.2
DEFAULT_3G_RADIO_POWER_W = 1.6
DEFAULT_IDLE_POWER_W = 0.4


@dataclass(frozen=True)
class EnergyModel:
    """Linear power model of a mobile device."""

    compute_power_watts: float = DEFAULT_COMPUTE_POWER_W
    radio_power_watts: float = DEFAULT_LTE_RADIO_POWER_W
    idle_power_watts: float = DEFAULT_IDLE_POWER_W

    def __post_init__(self) -> None:
        for name in ("compute_power_watts", "radio_power_watts", "idle_power_watts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def local_energy_joules(self, device: DeviceProfile, task: OffloadableTask) -> float:
        """Energy to execute ``task`` locally on ``device``."""
        runtime_s = device.local_execution_time_ms(task.work_units) / 1000.0
        return runtime_s * (self.compute_power_watts + self.idle_power_watts)

    def offload_energy_joules(self, response_time_ms: float) -> float:
        """Energy to offload a task whose result arrives after ``response_time_ms``.

        The radio stays active for the whole round trip in the homogeneous
        offloading model (the connection remains open until the result
        returns), plus the idle baseline.
        """
        if response_time_ms < 0:
            raise ValueError(f"response_time_ms must be >= 0, got {response_time_ms}")
        duration_s = response_time_ms / 1000.0
        return duration_s * (self.radio_power_watts + self.idle_power_watts)

    def offloading_saves_energy(
        self,
        device: DeviceProfile,
        task: OffloadableTask,
        expected_response_time_ms: float,
    ) -> bool:
        """The energy form of the Section II-A offloading condition."""
        return self.offload_energy_joules(expected_response_time_ms) < self.local_energy_joules(
            device, task
        )

    def energy_saving_joules(
        self,
        device: DeviceProfile,
        task: OffloadableTask,
        expected_response_time_ms: float,
    ) -> float:
        """Energy saved by offloading (negative when offloading costs more)."""
        return self.local_energy_joules(device, task) - self.offload_energy_joules(
            expected_response_time_ms
        )


def lte_energy_model() -> EnergyModel:
    """Energy model with the LTE radio power draw."""
    return EnergyModel(radio_power_watts=DEFAULT_LTE_RADIO_POWER_W)


def three_g_energy_model() -> EnergyModel:
    """Energy model with the (hungrier) 3G radio power draw."""
    return EnergyModel(radio_power_watts=DEFAULT_3G_RADIO_POWER_W)
