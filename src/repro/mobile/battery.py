"""Battery model.

The request traces of the paper include the device's battery level
(`<timestamp, user-id, acceleration-group, battery-level, round-trip-time>`),
and Section VII-3 sketches a battery-aware promotion policy as future work:
as the battery drains, the device promotes itself to a higher acceleration
level so that the network connection stays open for a shorter time.

This module provides a deliberately simple linear-drain battery model with a
per-request communication cost, sufficient to drive that policy and to
populate the trace field.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BatteryModel:
    """A linear battery drain model.

    Parameters
    ----------
    capacity_mah:
        Nominal battery capacity.
    level:
        Current state of charge in ``[0, 1]``.
    idle_drain_per_hour:
        Fraction of capacity drained per hour while idle (screen-on baseline).
    offload_cost_per_second:
        Fraction of capacity drained per second of open connection while an
        offloaded request is in flight (radio + screen).
    """

    capacity_mah: float = 3000.0
    level: float = 1.0
    idle_drain_per_hour: float = 0.05
    offload_cost_per_second: float = 0.00002

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError(f"capacity_mah must be positive, got {self.capacity_mah}")
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {self.level}")
        if self.idle_drain_per_hour < 0:
            raise ValueError(f"idle_drain_per_hour must be >= 0, got {self.idle_drain_per_hour}")
        if self.offload_cost_per_second < 0:
            raise ValueError(
                f"offload_cost_per_second must be >= 0, got {self.offload_cost_per_second}"
            )

    def drain_idle(self, hours: float) -> float:
        """Drain the battery for ``hours`` of idle time; return the new level."""
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")
        self.level = max(0.0, self.level - hours * self.idle_drain_per_hour)
        return self.level

    def drain_offload(self, connection_open_ms: float) -> float:
        """Drain the battery for one offloaded request; return the new level.

        The dominant client-side cost of a homogeneous-model offload is
        keeping the radio connection open while waiting for the result, so
        the drain scales with the request's response time.
        """
        if connection_open_ms < 0:
            raise ValueError(f"connection_open_ms must be >= 0, got {connection_open_ms}")
        drained = (connection_open_ms / 1000.0) * self.offload_cost_per_second
        self.level = max(0.0, self.level - drained)
        return self.level

    @property
    def is_depleted(self) -> bool:
        """Whether the battery has fully drained."""
        return self.level <= 0.0
