"""Offloadable computational tasks.

The paper's simulator offloads "a random computational task loaded from a pool
of common algorithms found in apps, e.g., quicksort, bubblesort" (Section V)
and uses a **minimax** decision-making task with static input for the
acceleration-level measurements (Fig. 5) and the model evaluation (Fig. 9/10).

Each :class:`OffloadableTask` here has two faces:

* a *real implementation* (:meth:`OffloadableTask.execute`) — a pure-Python
  algorithm run by the examples and tests, which is what a homogeneous-model
  surrogate would actually execute; and
* a *cost model* — the number of **work units** the task costs on a level-1
  cloud core (1 work unit = 1 ms of level-1 single-core execution), used by
  the discrete-event simulation so that experiments with tens of thousands of
  requests stay fast and deterministic.

The default pool holds the 10 independent tasks the evaluation section
mentions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


# ---------------------------------------------------------------------------
# Real algorithm implementations
# ---------------------------------------------------------------------------


def quicksort(values: Sequence[float]) -> List[float]:
    """Sort ``values`` with an explicit (non-library) quicksort."""
    items = list(values)
    if len(items) <= 1:
        return items
    pivot = items[len(items) // 2]
    smaller = [item for item in items if item < pivot]
    equal = [item for item in items if item == pivot]
    larger = [item for item in items if item > pivot]
    return quicksort(smaller) + equal + quicksort(larger)


def bubblesort(values: Sequence[float]) -> List[float]:
    """Sort ``values`` with bubble sort (intentionally quadratic)."""
    items = list(values)
    length = len(items)
    for outer in range(length):
        swapped = False
        for inner in range(0, length - outer - 1):
            if items[inner] > items[inner + 1]:
                items[inner], items[inner + 1] = items[inner + 1], items[inner]
                swapped = True
        if not swapped:
            break
    return items


def mergesort(values: Sequence[float]) -> List[float]:
    """Sort ``values`` with a top-down merge sort."""
    items = list(values)
    if len(items) <= 1:
        return items
    middle = len(items) // 2
    left = mergesort(items[:middle])
    right = mergesort(items[middle:])
    merged: List[float] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def fibonacci(n: int) -> int:
    """Iterative Fibonacci (the classic offloading micro-benchmark)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    previous, current = 0, 1
    for _ in range(n):
        previous, current = current, previous + current
    return previous


def nqueens_count(board_size: int) -> int:
    """Count all solutions of the N-queens puzzle via backtracking."""
    if board_size < 1:
        raise ValueError(f"board_size must be >= 1, got {board_size}")
    solutions = 0
    columns: set = set()
    diag_down: set = set()
    diag_up: set = set()

    def place(row: int) -> None:
        nonlocal solutions
        if row == board_size:
            solutions += 1
            return
        for column in range(board_size):
            if column in columns or (row + column) in diag_down or (row - column) in diag_up:
                continue
            columns.add(column)
            diag_down.add(row + column)
            diag_up.add(row - column)
            place(row + 1)
            columns.discard(column)
            diag_down.discard(row + column)
            diag_up.discard(row - column)

    place(0)
    return solutions


# --- Minimax on tic-tac-toe --------------------------------------------------

_WIN_LINES: Tuple[Tuple[int, int, int], ...] = (
    (0, 1, 2), (3, 4, 5), (6, 7, 8),   # rows
    (0, 3, 6), (1, 4, 7), (2, 5, 8),   # columns
    (0, 4, 8), (2, 4, 6),              # diagonals
)


def _tictactoe_winner(board: Sequence[int]) -> int:
    for a, b, c in _WIN_LINES:
        if board[a] != 0 and board[a] == board[b] == board[c]:
            return board[a]
    return 0


def minimax_best_move(board: Sequence[int], player: int = 1) -> Tuple[int, int]:
    """Full-depth minimax for tic-tac-toe.

    ``board`` is a 9-element sequence of {0 empty, 1 max player, -1 min
    player}.  Returns ``(best_score, best_move_index)``; the move index is -1
    on terminal boards.  This is the "decision making algorithm" class of task
    (minimax) the paper uses as its static workload.
    """
    board = list(board)
    if len(board) != 9 or any(cell not in (-1, 0, 1) for cell in board):
        raise ValueError("board must be 9 cells of -1/0/1")
    if player not in (-1, 1):
        raise ValueError(f"player must be -1 or 1, got {player}")

    def recurse(state: List[int], to_move: int) -> Tuple[int, int]:
        winner = _tictactoe_winner(state)
        if winner != 0:
            return winner, -1
        if all(cell != 0 for cell in state):
            return 0, -1
        best_move = -1
        best_score = -2 if to_move == 1 else 2
        for index in range(9):
            if state[index] != 0:
                continue
            state[index] = to_move
            score, _ = recurse(state, -to_move)
            state[index] = 0
            if to_move == 1 and score > best_score:
                best_score, best_move = score, index
            elif to_move == -1 and score < best_score:
                best_score, best_move = score, index
        return best_score, best_move

    return recurse(board, player)


def matrix_multiply(size: int, seed: int = 0) -> float:
    """Dense matrix multiplication; returns the trace of the product."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    return float(np.trace(a @ b))


def prime_sieve(limit: int) -> int:
    """Count primes below ``limit`` with a sieve of Eratosthenes."""
    if limit < 2:
        return 0
    sieve = np.ones(limit, dtype=bool)
    sieve[:2] = False
    for value in range(2, int(limit ** 0.5) + 1):
        if sieve[value]:
            sieve[value * value:: value] = False
    return int(np.count_nonzero(sieve))


def knapsack(weights: Sequence[int], values: Sequence[int], capacity: int) -> int:
    """0/1 knapsack by dynamic programming; returns the optimal value."""
    if len(weights) != len(values):
        raise ValueError("weights and values must have the same length")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    best = [0] * (capacity + 1)
    for weight, value in zip(weights, values):
        for remaining in range(capacity, weight - 1, -1):
            candidate = best[remaining - weight] + value
            if candidate > best[remaining]:
                best[remaining] = candidate
    return best[capacity]


def edit_distance(first: str, second: str) -> int:
    """Levenshtein distance between two strings (dynamic programming)."""
    if first == second:
        return 0
    previous = list(range(len(second) + 1))
    for i, char_a in enumerate(first, start=1):
        current = [i]
        for j, char_b in enumerate(second, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (0 if char_a == char_b else 1)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


# ---------------------------------------------------------------------------
# Task abstraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OffloadableTask:
    """One offloadable method in the homogeneous offloading model.

    Attributes
    ----------
    name:
        Human-readable task name.
    work_units:
        Mean cost on a level-1 core (1 unit = 1 ms of level-1 single-core
        execution); drives the simulated ``T_cloud``.
    work_variability:
        Coefficient of variation of the per-request work (random inputs make
        the processing requirement of each request random, Section VI-A1).
    payload_bytes:
        Approximate size of the serialized application state transferred,
        recorded in traces (the paper assumes transfer size does not dominate
        under LTE).
    runner / input_builder:
        The real implementation and a deterministic small-input builder for
        it, so the task can genuinely be executed locally or "in the cloud"
        by the examples.
    """

    name: str
    work_units: float
    work_variability: float = 0.25
    payload_bytes: int = 2048
    runner: Optional[Callable[..., Any]] = None
    input_builder: Optional[Callable[[np.random.Generator], tuple]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.work_units <= 0:
            raise ValueError(f"work_units must be positive, got {self.work_units}")
        if self.work_variability < 0:
            raise ValueError(f"work_variability must be >= 0, got {self.work_variability}")
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    def sample_work_units(self, rng: np.random.Generator) -> float:
        """Draw the work requirement of one request of this task."""
        if self.work_variability == 0:
            return self.work_units
        sample = rng.normal(self.work_units, self.work_units * self.work_variability)
        return float(max(sample, self.work_units * 0.1))

    def sample_work_units_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` work requirements in one vectorised call.

        Produces the same value sequence as ``count`` scalar
        :meth:`sample_work_units` calls on the same generator state (numpy
        fills arrays with the same iterative routine).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self.work_variability == 0:
            return np.full(count, self.work_units)
        samples = rng.normal(
            self.work_units, self.work_units * self.work_variability, size=count
        )
        return np.maximum(samples, self.work_units * 0.1)

    def execute(self, rng: Optional[np.random.Generator] = None) -> Any:
        """Really run the task's algorithm on a generated input."""
        if self.runner is None:
            raise NotImplementedError(f"task {self.name!r} has no real implementation")
        rng = rng if rng is not None else np.random.default_rng(0)
        args = self.input_builder(rng) if self.input_builder is not None else ()
        return self.runner(*args)


@dataclass(frozen=True)
class TaskRequest:
    """One offloading request: a task instance bound to a user and a time."""

    request_id: int
    user_id: int
    task: OffloadableTask
    work_units: float
    created_at_ms: float
    acceleration_group: int
    battery_level: float = 1.0


class TaskPool:
    """A pool of offloadable tasks from which requests draw randomly."""

    def __init__(self, tasks: Sequence[OffloadableTask]) -> None:
        if not tasks:
            raise ValueError("task pool must contain at least one task")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in pool: {names}")
        self._tasks: List[OffloadableTask] = list(tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    @property
    def names(self) -> List[str]:
        return [task.name for task in self._tasks]

    def get(self, name: str) -> OffloadableTask:
        """Look up a task by name."""
        for task in self._tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task {name!r}; pool has {self.names}")

    def sample(self, rng: np.random.Generator) -> OffloadableTask:
        """Pick a task uniformly at random (the paper's random-pool mode)."""
        index = int(rng.integers(0, len(self._tasks)))
        return self._tasks[index]

    def mean_work_units(self) -> float:
        """Average work per request across the pool (uniform task choice)."""
        return float(np.mean([task.work_units for task in self._tasks]))


def build_default_task_pool() -> TaskPool:
    """The 10-task pool used by the evaluation.

    Work-unit costs are calibrated so that a typical random request costs a
    few hundred milliseconds of level-1 execution, the static minimax task
    costs ≈2000 ms of level-1 execution (Fig. 5 / Fig. 9 operate in the
    0.5–5 s response-time range) and the short-task end of the pool keeps the
    Fig. 4 characterization within its 10–1000+ ms range.
    """
    tasks = [
        OffloadableTask(
            name="minimax",
            work_units=2000.0,
            work_variability=0.05,
            payload_bytes=256,
            runner=minimax_best_move,
            input_builder=lambda rng: ([0] * 9, 1),
        ),
        OffloadableTask(
            name="nqueens",
            work_units=900.0,
            work_variability=0.15,
            payload_bytes=64,
            runner=nqueens_count,
            input_builder=lambda rng: (8,),
        ),
        OffloadableTask(
            name="quicksort",
            work_units=120.0,
            work_variability=0.30,
            payload_bytes=8192,
            runner=quicksort,
            input_builder=lambda rng: (rng.standard_normal(512).tolist(),),
        ),
        OffloadableTask(
            name="bubblesort",
            work_units=350.0,
            work_variability=0.30,
            payload_bytes=8192,
            runner=bubblesort,
            input_builder=lambda rng: (rng.standard_normal(256).tolist(),),
        ),
        OffloadableTask(
            name="mergesort",
            work_units=100.0,
            work_variability=0.30,
            payload_bytes=8192,
            runner=mergesort,
            input_builder=lambda rng: (rng.standard_normal(512).tolist(),),
        ),
        OffloadableTask(
            name="fibonacci",
            work_units=40.0,
            work_variability=0.20,
            payload_bytes=32,
            runner=fibonacci,
            input_builder=lambda rng: (int(rng.integers(100, 400)),),
        ),
        OffloadableTask(
            name="matrix-multiply",
            work_units=500.0,
            work_variability=0.20,
            payload_bytes=16384,
            runner=matrix_multiply,
            input_builder=lambda rng: (48, int(rng.integers(0, 1000))),
        ),
        OffloadableTask(
            name="prime-sieve",
            work_units=200.0,
            work_variability=0.15,
            payload_bytes=32,
            runner=prime_sieve,
            input_builder=lambda rng: (int(rng.integers(10_000, 50_000)),),
        ),
        OffloadableTask(
            name="knapsack",
            work_units=300.0,
            work_variability=0.25,
            payload_bytes=1024,
            runner=knapsack,
            input_builder=lambda rng: (
                rng.integers(1, 20, size=24).tolist(),
                rng.integers(1, 50, size=24).tolist(),
                60,
            ),
        ),
        OffloadableTask(
            name="edit-distance",
            work_units=150.0,
            work_variability=0.25,
            payload_bytes=4096,
            runner=edit_distance,
            input_builder=lambda rng: (
                "".join(rng.choice(list("abcdefgh"), size=64)),
                "".join(rng.choice(list("abcdefgh"), size=64)),
            ),
        ),
    ]
    return TaskPool(tasks)


#: The default pool of 10 independent tasks (Section VI of the paper).
DEFAULT_TASK_POOL: TaskPool = build_default_task_pool()
