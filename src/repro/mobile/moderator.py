"""Client-side moderator: promotion policies.

The paper's architecture places the promotion decision on the mobile client:
"a client-side moderator component, which monitors the execution time of the
code in the application, and promotes the execution of code to a higher level
of acceleration when it detects that the response time of the application
starts to degrade" (Section I).  For the evaluation the paper uses a *static
probability of 1/50* to promote a user per request (Section VI-C3) and leaves
context-based policies as future work.

This module implements:

* :class:`StaticProbabilityPolicy` — the paper's 1/50 rule.
* :class:`ResponseTimeThresholdPolicy` — the mechanism the paper describes
  qualitatively ("if the processing of a task in a certain device requires
  more than t milliseconds, then the mobile promotes the user").
* :class:`BatteryAwarePolicy` — the future-work extension of Section VII-3:
  low battery pushes the device to a higher acceleration level to shorten the
  time the radio connection stays open.
* :class:`Moderator` — the component that applies a policy to a device after
  each completed request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.mobile.device import MobileDevice


@dataclass(frozen=True)
class PromotionDecision:
    """The outcome of one promotion check."""

    promote: bool
    reason: str = ""


class PromotionPolicy(Protocol):
    """Decides, after each completed request, whether to promote the device."""

    def decide(
        self,
        device: MobileDevice,
        response_time_ms: float,
        rng: np.random.Generator,
    ) -> PromotionDecision:
        """Return the promotion decision for this request."""
        ...


@dataclass(frozen=True)
class StaticProbabilityPolicy:
    """Promote with a fixed probability per completed request (paper default 1/50)."""

    probability: float = 1.0 / 50.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")

    def decide(
        self,
        device: MobileDevice,
        response_time_ms: float,
        rng: np.random.Generator,
    ) -> PromotionDecision:
        if rng.random() < self.probability:
            return PromotionDecision(True, f"static probability {self.probability:.4f}")
        return PromotionDecision(False)

    def decide_many(
        self,
        device: MobileDevice,
        response_times_ms: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised :meth:`decide`: one uniform draw per response.

        Consumes exactly one ``rng.random()`` per response, in order, so the
        stream state after a batch matches the scalar per-request path.
        """
        return rng.random(len(response_times_ms)) < self.probability


@dataclass(frozen=True)
class ResponseTimeThresholdPolicy:
    """Promote when the recent mean response time exceeds a threshold.

    This is the degradation-detection behaviour the paper attributes to the
    moderator: promotion happens when the perceived response time "starts to
    degrade" beyond the application's tolerance ``threshold_ms``.
    """

    threshold_ms: float = 2000.0
    window: int = 5

    def __post_init__(self) -> None:
        if self.threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be positive, got {self.threshold_ms}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def decide(
        self,
        device: MobileDevice,
        response_time_ms: float,
        rng: np.random.Generator,
    ) -> PromotionDecision:
        recent = device.recent_mean_response_ms(self.window)
        if recent is not None and recent > self.threshold_ms:
            return PromotionDecision(
                True, f"mean of last {self.window} responses {recent:.0f} ms > {self.threshold_ms:.0f} ms"
            )
        return PromotionDecision(False)

    def decide_many(
        self,
        device: MobileDevice,
        response_times_ms: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised :meth:`decide` over a batch already recorded on the device.

        The i-th decision uses the rolling window ending at the i-th new
        response, computed with one cumulative sum — no RNG is consumed,
        matching the scalar policy.
        """
        batch = len(response_times_ms)
        if batch == 0:
            return np.zeros(0, dtype=bool)
        total = len(device.response_times_ms)
        prior = total - batch
        tail_start = max(0, prior - (self.window - 1))
        tail = np.asarray(device.response_times_ms[tail_start:], dtype=float)
        sums = np.concatenate(([0.0], np.cumsum(tail)))
        end = (prior - tail_start) + 1 + np.arange(batch)
        start = np.maximum(end - self.window, 0)
        means = (sums[end] - sums[start]) / (end - start)
        return means > self.threshold_ms


@dataclass(frozen=True)
class BatteryAwarePolicy:
    """Promote when the battery is low (Section VII-3 future-work policy).

    Below ``battery_threshold`` the device promotes with ``low_battery_probability``
    per request (to shorten connection-open time); above the threshold it falls
    back to the static probability.
    """

    battery_threshold: float = 0.2
    low_battery_probability: float = 0.25
    base_probability: float = 1.0 / 50.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.battery_threshold <= 1.0:
            raise ValueError(
                f"battery_threshold must be in [0, 1], got {self.battery_threshold}"
            )
        for name, value in (
            ("low_battery_probability", self.low_battery_probability),
            ("base_probability", self.base_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def decide(
        self,
        device: MobileDevice,
        response_time_ms: float,
        rng: np.random.Generator,
    ) -> PromotionDecision:
        if device.battery.level <= self.battery_threshold:
            if rng.random() < self.low_battery_probability:
                return PromotionDecision(
                    True, f"battery at {device.battery.level:.0%} <= {self.battery_threshold:.0%}"
                )
            return PromotionDecision(False)
        if rng.random() < self.base_probability:
            return PromotionDecision(True, "base static probability")
        return PromotionDecision(False)

    def decide_many(
        self,
        device: MobileDevice,
        response_times_ms: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised :meth:`decide`: one draw per response against the
        battery-dependent probability.

        The device's battery level is read once for the whole batch (the
        batched executor drains per slot rather than per request), which is
        the documented batched-mode approximation.
        """
        probability = (
            self.low_battery_probability
            if device.battery.level <= self.battery_threshold
            else self.base_probability
        )
        return rng.random(len(response_times_ms)) < probability


class Moderator:
    """Applies a promotion policy to a device after each completed request."""

    def __init__(
        self,
        policy: Optional[PromotionPolicy] = None,
        *,
        max_group: int,
        rng: np.random.Generator,
    ) -> None:
        if max_group < 0:
            raise ValueError(f"max_group must be >= 0, got {max_group}")
        self.policy = policy if policy is not None else StaticProbabilityPolicy()
        self.max_group = max_group
        self._rng = rng
        self.promotions_made = 0

    def observe(
        self, device: MobileDevice, response_time_ms: float, now_ms: float
    ) -> PromotionDecision:
        """Record one completed request and possibly promote the device.

        Promotion is *sequential*: the device moves up exactly one group per
        promotion, matching the paper ("a user um is gradually promoted in a
        sequential manner to a higher acceleration group").
        """
        device.record_response(response_time_ms)
        if device.acceleration_group >= self.max_group:
            return PromotionDecision(False, "already at the highest group")
        decision = self.policy.decide(device, response_time_ms, self._rng)
        if decision.promote:
            device.promote(device.acceleration_group + 1, now_ms)
            self.promotions_made += 1
        return decision

    def observe_many(
        self,
        device: MobileDevice,
        response_times_ms: np.ndarray,
        completed_at_ms: np.ndarray,
    ) -> int:
        """Batched :meth:`observe`: record a slot's worth of responses at once.

        Responses must be ordered by completion time.  Policies with a
        ``decide_many`` make all their promotion draws in one vectorised call;
        policies without it fall back to scalar ``decide`` per response.
        Returns the number of promotions applied.

        One deliberate approximation versus the scalar path: when a device
        reaches the highest group mid-batch, the remaining responses of the
        batch have already consumed their decision draws (the scalar path
        stops drawing at that point).  Promotions themselves are applied
        identically.
        """
        values = np.asarray(response_times_ms, dtype=float)
        stamps = np.asarray(completed_at_ms, dtype=float)
        if values.shape != stamps.shape:
            raise ValueError(
                f"response/completion arrays must align: {values.shape} vs {stamps.shape}"
            )
        decide_many = getattr(self.policy, "decide_many", None)
        if decide_many is None:
            # Scalar fallback for custom policies: interleave recording and
            # deciding exactly like observe(), so state-reading policies never
            # see responses that have not been delivered yet.
            promotions = 0
            for response, stamp in zip(values, stamps):
                if self.observe(device, float(response), float(stamp)).promote:
                    promotions += 1
            return promotions
        device.record_responses(values)
        if values.size == 0 or device.acceleration_group >= self.max_group:
            return 0
        promotions = 0
        decisions = decide_many(device, values, self._rng)
        for index in np.flatnonzero(decisions):
            if device.acceleration_group >= self.max_group:
                break
            device.promote(device.acceleration_group + 1, float(stamps[index]))
            self.promotions_made += 1
            promotions += 1
        return promotions
