"""Arrival processes.

The paper's simulator drives its inter-arrival mode with either a fixed
inter-arrival time, a doubling arrival rate (Fig. 8b: 1 Hz to 1024 Hz), or a
realistic time-varying inter-arrival distribution extracted from the
smartphone usage study (100–5000 ms between requests).  These classes provide
the corresponding arrival-time generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np


#: First chunk size used by the vectorised generators; chunks double after it.
_INITIAL_CHUNK = 1024


class ArrivalProcess:
    """Base class: an iterator of inter-arrival gaps in milliseconds."""

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        """Return the next inter-arrival gap in milliseconds."""
        raise NotImplementedError

    def sample_gaps_ms(self, rng: np.random.Generator, size: int) -> Optional[np.ndarray]:
        """Draw ``size`` inter-arrival gaps at once, or ``None`` if unsupported.

        Subclasses that can vectorise their gap distribution override this;
        :meth:`arrival_times_array` then generates arrivals in bulk chunks
        instead of one scalar draw per request.
        """
        return None

    def arrival_times_array(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> np.ndarray:
        """Vectorised :meth:`arrival_times_ms`: absolute times as a float array.

        Gaps are drawn in doubling chunks and accumulated with ``cumsum``, so
        generating a 100k-request workload costs a handful of numpy calls
        rather than 100k scalar RNG round trips.  Falls back to the scalar
        loop for processes without :meth:`sample_gaps_ms`.
        """
        if end_ms < start_ms:
            raise ValueError(f"end_ms {end_ms} before start_ms {start_ms}")
        probe = self.sample_gaps_ms(rng, 0)
        if probe is None:
            return np.asarray(
                self._arrival_times_scalar(
                    rng, start_ms=start_ms, end_ms=end_ms, max_arrivals=max_arrivals
                ),
                dtype=float,
            )
        pieces: List[np.ndarray] = []
        generated = 0
        offset = start_ms
        chunk = _INITIAL_CHUNK
        while offset < end_ms:
            gaps = self.sample_gaps_ms(rng, chunk)
            if np.any(gaps < 0):
                bad = float(gaps[gaps < 0][0])
                raise ValueError(f"arrival process produced a negative gap: {bad}")
            times = offset + np.cumsum(gaps)
            advanced = float(times[-1]) if times.size else offset
            if times.size and advanced <= offset:
                raise ValueError(
                    "arrival process makes no progress (inter-arrival gaps are all zero)"
                )
            pieces.append(times)
            generated += times.size
            offset = advanced
            if max_arrivals is not None and generated >= max_arrivals:
                break
            chunk *= 2
        merged = np.concatenate(pieces) if pieces else np.empty(0, dtype=float)
        merged = merged[merged < end_ms]
        if max_arrivals is not None:
            merged = merged[:max_arrivals]
        return merged

    def _arrival_times_scalar(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> List[float]:
        """The original one-gap-at-a-time generator (kept as a fallback)."""
        times: List[float] = []
        now = start_ms
        while True:
            gap = self.next_gap_ms(rng)
            if gap < 0:
                raise ValueError(f"arrival process produced a negative gap: {gap}")
            now += gap
            if now >= end_ms:
                break
            times.append(now)
            if max_arrivals is not None and len(times) >= max_arrivals:
                break
        return times

    def arrival_times_ms(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> List[float]:
        """Generate absolute arrival times in ``[start_ms, end_ms)`` as a list."""
        return self.arrival_times_array(
            rng, start_ms=start_ms, end_ms=end_ms, max_arrivals=max_arrivals
        ).tolist()


@dataclass
class FixedRateArrivalProcess(ArrivalProcess):
    """Deterministic arrivals at a constant rate (used for the Fig. 8 sweeps)."""

    rate_hz: float

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return 1000.0 / self.rate_hz

    def sample_gaps_ms(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, 1000.0 / self.rate_hz)


@dataclass
class PoissonArrivalProcess(ArrivalProcess):
    """Memoryless arrivals with exponential inter-arrival gaps."""

    rate_hz: float

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1000.0 / self.rate_hz))

    def sample_gaps_ms(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1000.0 / self.rate_hz, size=size)


@dataclass
class EmpiricalArrivalProcess(ArrivalProcess):
    """Arrivals drawn from an empirical set of inter-arrival gaps.

    This is how the smartphone usage study feeds the simulator: the observed
    gaps (100–5000 ms, night gaps removed) are resampled with replacement.
    """

    gaps_ms: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.gaps_ms) == 0:
            raise ValueError("gaps_ms must be non-empty")
        if any(gap < 0 for gap in self.gaps_ms):
            raise ValueError("gaps_ms must all be non-negative")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        index = int(rng.integers(0, len(self.gaps_ms)))
        return float(self.gaps_ms[index])

    def sample_gaps_ms(self, rng: np.random.Generator, size: int) -> np.ndarray:
        pool = np.asarray(self.gaps_ms, dtype=float)
        return pool[rng.integers(0, pool.size, size=size)]


@dataclass
class UniformArrivalProcess(ArrivalProcess):
    """Arrivals with gaps uniform in ``[low_ms, high_ms]``.

    Matches the paper's summary of the usage study: "an inter-arrival rate
    between (100-5000) milliseconds".
    """

    low_ms: float = 100.0
    high_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.low_ms < 0:
            raise ValueError(f"low_ms must be >= 0, got {self.low_ms}")
        if self.high_ms < self.low_ms:
            raise ValueError(f"high_ms {self.high_ms} < low_ms {self.low_ms}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_ms, self.high_ms))

    def sample_gaps_ms(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low_ms, self.high_ms, size=size)


class ModulatedPoissonProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with a time-varying rate.

    The instantaneous rate is ``rate_fn_hz(t_ms)``; arrivals are generated
    with Lewis–Shedler thinning against the supplied ``peak_rate_hz`` upper
    bound.  This is the substrate for scenario workloads the paper never
    tried — flash crowds, diurnal cycles and bursty on/off phases — where a
    constant-rate process cannot represent the load shape.
    """

    def __init__(
        self,
        rate_fn_hz: Callable[[float], float],
        *,
        peak_rate_hz: float,
    ) -> None:
        if peak_rate_hz <= 0:
            raise ValueError(f"peak_rate_hz must be positive, got {peak_rate_hz}")
        self.rate_fn_hz = rate_fn_hz
        self.peak_rate_hz = peak_rate_hz

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        raise NotImplementedError(
            "a non-homogeneous process has no stationary gap distribution; "
            "use arrival_times_ms"
        )

    def _rates_at(self, times_ms: np.ndarray) -> np.ndarray:
        """Evaluate ``rate_fn_hz`` over an array of times.

        Numpy-aware rate functions (like the scenario runner's modulation
        factors) are called once on the whole array; scalar-only callables
        fall back to an element-wise loop so arbitrary lambdas keep working.
        """
        try:
            rates = np.asarray(self.rate_fn_hz(times_ms), dtype=float)
        except (TypeError, ValueError):
            return np.asarray(
                [float(self.rate_fn_hz(float(t))) for t in times_ms], dtype=float
            )
        if rates.shape != times_ms.shape:
            if rates.ndim == 0:
                return np.full(times_ms.shape, float(rates))
            return np.asarray(
                [float(self.rate_fn_hz(float(t))) for t in times_ms], dtype=float
            )
        return rates

    def _validate_rates(self, times_ms: np.ndarray, rates: np.ndarray) -> None:
        negative = rates < 0
        if np.any(negative):
            where = int(np.flatnonzero(negative)[0])
            raise ValueError(
                f"rate_fn_hz produced a negative rate at t={float(times_ms[where])}: "
                f"{float(rates[where])}"
            )
        above = rates > self.peak_rate_hz * (1.0 + 1e-9)
        if np.any(above):
            where = int(np.flatnonzero(above)[0])
            raise ValueError(
                f"rate_fn_hz exceeded peak_rate_hz at t={float(times_ms[where])}: "
                f"{float(rates[where])} > {self.peak_rate_hz}"
            )

    def arrival_times_array(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> np.ndarray:
        """Arrival times in ``[start_ms, end_ms)`` by vectorised thinning.

        Candidate points are drawn in bulk from the homogeneous peak-rate
        process, the rate function is evaluated on the whole candidate array,
        and one uniform draw per candidate decides acceptance — the same
        Lewis–Shedler algorithm as before, minus the per-candidate Python
        round trip.
        """
        if end_ms < start_ms:
            raise ValueError(f"end_ms {end_ms} before start_ms {start_ms}")
        peak_gap_mean_ms = 1000.0 / self.peak_rate_hz
        expected = (end_ms - start_ms) / peak_gap_mean_ms
        chunk = max(_INITIAL_CHUNK, int(expected * 1.05) + 16)
        accepted: List[np.ndarray] = []
        total = 0
        offset = start_ms
        while offset < end_ms:
            candidates = offset + np.cumsum(rng.exponential(peak_gap_mean_ms, size=chunk))
            offset = float(candidates[-1])
            candidates = candidates[candidates < end_ms]
            if candidates.size:
                rates = self._rates_at(candidates)
                self._validate_rates(candidates, rates)
                keep = rng.random(candidates.size) < rates / self.peak_rate_hz
                accepted.append(candidates[keep])
                total += int(keep.sum())
                if max_arrivals is not None and total >= max_arrivals:
                    break
            chunk = max(chunk // 2, _INITIAL_CHUNK)
        merged = np.concatenate(accepted) if accepted else np.empty(0, dtype=float)
        if max_arrivals is not None:
            merged = merged[:max_arrivals]
        return merged

    def arrival_times_ms(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> List[float]:
        """Generate arrival times in ``[start_ms, end_ms)`` by thinning."""
        return self.arrival_times_array(
            rng, start_ms=start_ms, end_ms=end_ms, max_arrivals=max_arrivals
        ).tolist()


def doubling_rate_schedule(
    *,
    initial_rate_hz: float = 1.0,
    final_rate_hz: float = 1024.0,
    step_duration_ms: float = 5 * 60 * 1000.0,
) -> List[tuple]:
    """The Fig. 8b arrival-rate schedule: the rate doubles every step.

    Returns a list of ``(start_ms, end_ms, rate_hz)`` segments starting at
    time zero.
    """
    if initial_rate_hz <= 0 or final_rate_hz < initial_rate_hz:
        raise ValueError(
            f"need 0 < initial_rate_hz <= final_rate_hz, got {initial_rate_hz}, {final_rate_hz}"
        )
    if step_duration_ms <= 0:
        raise ValueError(f"step_duration_ms must be positive, got {step_duration_ms}")
    segments: List[tuple] = []
    rate = initial_rate_hz
    start = 0.0
    while rate <= final_rate_hz:
        segments.append((start, start + step_duration_ms, rate))
        start += step_duration_ms
        rate *= 2.0
    return segments
