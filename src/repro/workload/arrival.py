"""Arrival processes.

The paper's simulator drives its inter-arrival mode with either a fixed
inter-arrival time, a doubling arrival rate (Fig. 8b: 1 Hz to 1024 Hz), or a
realistic time-varying inter-arrival distribution extracted from the
smartphone usage study (100–5000 ms between requests).  These classes provide
the corresponding arrival-time generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np


class ArrivalProcess:
    """Base class: an iterator of inter-arrival gaps in milliseconds."""

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        """Return the next inter-arrival gap in milliseconds."""
        raise NotImplementedError

    def arrival_times_ms(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> List[float]:
        """Generate absolute arrival times in ``[start_ms, end_ms)``."""
        if end_ms < start_ms:
            raise ValueError(f"end_ms {end_ms} before start_ms {start_ms}")
        times: List[float] = []
        now = start_ms
        while True:
            gap = self.next_gap_ms(rng)
            if gap < 0:
                raise ValueError(f"arrival process produced a negative gap: {gap}")
            now += gap
            if now >= end_ms:
                break
            times.append(now)
            if max_arrivals is not None and len(times) >= max_arrivals:
                break
        return times


@dataclass
class FixedRateArrivalProcess(ArrivalProcess):
    """Deterministic arrivals at a constant rate (used for the Fig. 8 sweeps)."""

    rate_hz: float

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return 1000.0 / self.rate_hz


@dataclass
class PoissonArrivalProcess(ArrivalProcess):
    """Memoryless arrivals with exponential inter-arrival gaps."""

    rate_hz: float

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1000.0 / self.rate_hz))


@dataclass
class EmpiricalArrivalProcess(ArrivalProcess):
    """Arrivals drawn from an empirical set of inter-arrival gaps.

    This is how the smartphone usage study feeds the simulator: the observed
    gaps (100–5000 ms, night gaps removed) are resampled with replacement.
    """

    gaps_ms: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.gaps_ms) == 0:
            raise ValueError("gaps_ms must be non-empty")
        if any(gap < 0 for gap in self.gaps_ms):
            raise ValueError("gaps_ms must all be non-negative")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        index = int(rng.integers(0, len(self.gaps_ms)))
        return float(self.gaps_ms[index])


@dataclass
class UniformArrivalProcess(ArrivalProcess):
    """Arrivals with gaps uniform in ``[low_ms, high_ms]``.

    Matches the paper's summary of the usage study: "an inter-arrival rate
    between (100-5000) milliseconds".
    """

    low_ms: float = 100.0
    high_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.low_ms < 0:
            raise ValueError(f"low_ms must be >= 0, got {self.low_ms}")
        if self.high_ms < self.low_ms:
            raise ValueError(f"high_ms {self.high_ms} < low_ms {self.low_ms}")

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_ms, self.high_ms))


class ModulatedPoissonProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with a time-varying rate.

    The instantaneous rate is ``rate_fn_hz(t_ms)``; arrivals are generated
    with Lewis–Shedler thinning against the supplied ``peak_rate_hz`` upper
    bound.  This is the substrate for scenario workloads the paper never
    tried — flash crowds, diurnal cycles and bursty on/off phases — where a
    constant-rate process cannot represent the load shape.
    """

    def __init__(
        self,
        rate_fn_hz: Callable[[float], float],
        *,
        peak_rate_hz: float,
    ) -> None:
        if peak_rate_hz <= 0:
            raise ValueError(f"peak_rate_hz must be positive, got {peak_rate_hz}")
        self.rate_fn_hz = rate_fn_hz
        self.peak_rate_hz = peak_rate_hz

    def next_gap_ms(self, rng: np.random.Generator) -> float:
        raise NotImplementedError(
            "a non-homogeneous process has no stationary gap distribution; "
            "use arrival_times_ms"
        )

    def arrival_times_ms(
        self,
        rng: np.random.Generator,
        *,
        start_ms: float,
        end_ms: float,
        max_arrivals: Optional[int] = None,
    ) -> List[float]:
        """Generate arrival times in ``[start_ms, end_ms)`` by thinning."""
        if end_ms < start_ms:
            raise ValueError(f"end_ms {end_ms} before start_ms {start_ms}")
        times: List[float] = []
        peak_gap_mean_ms = 1000.0 / self.peak_rate_hz
        now = start_ms
        while True:
            now += float(rng.exponential(peak_gap_mean_ms))
            if now >= end_ms:
                break
            rate = float(self.rate_fn_hz(now))
            if rate < 0:
                raise ValueError(f"rate_fn_hz produced a negative rate at t={now}: {rate}")
            if rate > self.peak_rate_hz * (1.0 + 1e-9):
                raise ValueError(
                    f"rate_fn_hz exceeded peak_rate_hz at t={now}: "
                    f"{rate} > {self.peak_rate_hz}"
                )
            if rng.random() < rate / self.peak_rate_hz:
                times.append(now)
                if max_arrivals is not None and len(times) >= max_arrivals:
                    break
        return times


def doubling_rate_schedule(
    *,
    initial_rate_hz: float = 1.0,
    final_rate_hz: float = 1024.0,
    step_duration_ms: float = 5 * 60 * 1000.0,
) -> List[tuple]:
    """The Fig. 8b arrival-rate schedule: the rate doubles every step.

    Returns a list of ``(start_ms, end_ms, rate_hz)`` segments starting at
    time zero.
    """
    if initial_rate_hz <= 0 or final_rate_hz < initial_rate_hz:
        raise ValueError(
            f"need 0 < initial_rate_hz <= final_rate_hz, got {initial_rate_hz}, {final_rate_hz}"
        )
    if step_duration_ms <= 0:
        raise ValueError(f"step_duration_ms must be positive, got {step_duration_ms}")
    segments: List[tuple] = []
    rate = initial_rate_hz
    start = 0.0
    while rate <= final_rate_hz:
        segments.append((start, start + step_duration_ms, rate))
        start += step_duration_ms
        rate *= 2.0
    return segments
