"""Trace replay: drive the simulated system from a recorded trace log.

A production deployment of the paper's system accumulates request traces in
its log store.  Replaying such a log against a different configuration — more
or fewer instances, a different promotion policy, a different routing policy —
answers "what would have happened if" questions without touching production.

:class:`TraceReplayer` converts a :class:`~repro.workload.traces.TraceLog`
back into a schedule of offloading requests (same users, same acceleration
groups, same arrival times) and pushes them through a fresh
:class:`~repro.sdn.accelerator.SDNAccelerator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mobile.tasks import DEFAULT_TASK_POOL, OffloadableTask, TaskPool
from repro.sdn.accelerator import RequestRecord, SDNAccelerator
from repro.workload.traces import TraceLog


@dataclass
class ReplayResult:
    """Outcome of one trace replay."""

    records: List[RequestRecord]
    original_count: int

    @property
    def replayed_count(self) -> int:
        return len(self.records)

    def success_rate(self) -> float:
        if not self.records:
            raise ValueError("nothing was replayed")
        return sum(1 for record in self.records if record.success) / len(self.records)

    def mean_response_ms(self) -> float:
        successes = [record.response_time_ms for record in self.records if record.success]
        if not successes:
            raise ValueError("no successful requests in the replay")
        return float(np.mean(successes))

    def response_times_by_group(self) -> Dict[int, List[float]]:
        grouped: Dict[int, List[float]] = {}
        for record in self.records:
            if record.success:
                grouped.setdefault(record.acceleration_group, []).append(record.response_time_ms)
        return grouped


class TraceReplayer:
    """Replays a trace log through an SDN-accelerator."""

    def __init__(
        self,
        accelerator: SDNAccelerator,
        *,
        task_pool: Optional[TaskPool] = None,
        task_name: Optional[str] = "minimax",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.accelerator = accelerator
        self.task_pool = task_pool if task_pool is not None else DEFAULT_TASK_POOL
        self.task_name = task_name
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def _pick_task(self) -> OffloadableTask:
        if self.task_name is not None:
            return self.task_pool.get(self.task_name)
        return self.task_pool.sample(self._rng)

    def schedule(self, log: TraceLog, *, time_scale: float = 1.0) -> int:
        """Schedule every trace record as a future offloading request.

        ``time_scale`` compresses (<1) or stretches (>1) the original
        timeline.  Returns the number of scheduled requests.  The caller runs
        the accelerator's engine afterwards.
        """
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        engine = self.accelerator.engine
        records = log.sorted_records()
        if not records:
            return 0
        origin = records[0].timestamp_ms
        for record in records:
            arrival = engine.now_ms + (record.timestamp_ms - origin) * time_scale
            task = self._pick_task()

            def _submit(record=record, task=task) -> None:
                self.accelerator.submit(
                    user_id=record.user_id,
                    acceleration_group=record.acceleration_group,
                    work_units=task.sample_work_units(self._rng),
                    task_name=task.name,
                    battery_level=record.battery_level,
                )

            engine.schedule_at(arrival, _submit, label="replay:request")
        return len(records)

    def replay(self, log: TraceLog, *, time_scale: float = 1.0, drain_ms: float = 60_000.0) -> ReplayResult:
        """Schedule the log and run the engine until everything drains."""
        already_processed = len(self.accelerator.records)
        self.schedule(log, time_scale=time_scale)
        self.accelerator.engine.run()
        # Allow in-flight work to finish (run() drains the queue, but a
        # bounded-horizon caller may prefer an explicit drain margin).
        if drain_ms > 0:
            self.accelerator.engine.run(until_ms=self.accelerator.engine.now_ms + drain_ms)
        return ReplayResult(
            records=self.accelerator.records[already_processed:],
            original_count=len(log),
        )
