"""Workload substrate.

Reproduces the paper's workload machinery:

* :mod:`repro.workload.traces` — the request trace log.  The paper stores one
  record per processed request in MySQL with the schema
  ``<timestamp, user-id, acceleration-group, battery-level, round-trip-time>``;
  here the log is an in-memory store with CSV import/export.
* :mod:`repro.workload.arrival` — arrival processes (fixed-rate, Poisson and
  empirical/trace-driven inter-arrival times).
* :mod:`repro.workload.generator` — the two operational modes of the paper's
  simulator: **concurrent mode** (n simultaneous offloading threads, used to
  benchmark instances) and **inter-arrival mode** (a time-varying stream of
  requests from a population of devices, used for the system experiments).
* :mod:`repro.workload.sessions` — a synthetic stand-in for the 3-month,
  6-participant smartphone usage study, producing realistic time-varying
  inter-arrival traces (100–5000 ms between app sessions, diurnal activity,
  inactive nights).
"""

from repro.workload.arrival import (
    EmpiricalArrivalProcess,
    FixedRateArrivalProcess,
    PoissonArrivalProcess,
)
from repro.workload.generator import (
    ConcurrentWorkloadGenerator,
    InterArrivalWorkloadGenerator,
    WorkloadRequest,
)
from repro.workload.sessions import (
    SmartphoneUsageStudy,
    UsageSession,
    UsageTrace,
    synthesize_usage_study,
)
from repro.workload.traces import TraceLog, TraceRecord

__all__ = [
    "ConcurrentWorkloadGenerator",
    "EmpiricalArrivalProcess",
    "FixedRateArrivalProcess",
    "InterArrivalWorkloadGenerator",
    "PoissonArrivalProcess",
    "ReplayResult",
    "SmartphoneUsageStudy",
    "TraceLog",
    "TraceReplayer",
    "TraceRecord",
    "UsageSession",
    "UsageTrace",
    "WorkloadRequest",
    "synthesize_usage_study",
]


def __getattr__(name: str):
    # ``repro.workload.replay`` depends on the SDN front-end, which itself
    # depends on (other parts of) this package; importing it lazily keeps the
    # convenience re-export without creating an import cycle.
    if name in ("TraceReplayer", "ReplayResult"):
        from repro.workload import replay

        return getattr(replay, name)
    raise AttributeError(f"module 'repro.workload' has no attribute {name!r}")
