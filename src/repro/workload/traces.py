"""Request trace log.

Every request processed by the SDN-accelerator is logged as a trace record
with the paper's schema (Section IV-A):

    <timestamp, user-id, acceleration-group, battery-level, round-trip-time>

The trace log is the knowledge base of the adaptive model: traces are sorted
chronologically and sliced into equal-length time slots; the number of
distinct users per acceleration group in each slot is the workload the
predictor learns from.

The paper stores traces in MySQL; this reproduction keeps them in memory with
CSV round-tripping for persistence.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.simulation.clock import MILLISECONDS_PER_HOUR


@dataclass(frozen=True)
class TraceRecord:
    """One logged request."""

    timestamp_ms: float
    user_id: int
    acceleration_group: int
    battery_level: float
    round_trip_time_ms: float

    def __post_init__(self) -> None:
        if self.timestamp_ms < 0:
            raise ValueError(f"timestamp_ms must be >= 0, got {self.timestamp_ms}")
        if self.user_id < 0:
            raise ValueError(f"user_id must be >= 0, got {self.user_id}")
        if self.acceleration_group < 0:
            raise ValueError(
                f"acceleration_group must be >= 0, got {self.acceleration_group}"
            )
        if not 0.0 <= self.battery_level <= 1.0:
            raise ValueError(f"battery_level must be in [0, 1], got {self.battery_level}")
        if self.round_trip_time_ms < 0:
            raise ValueError(
                f"round_trip_time_ms must be >= 0, got {self.round_trip_time_ms}"
            )


class TraceLog:
    """An append-only, chronologically sortable store of trace records."""

    _FIELDNAMES = (
        "timestamp_ms",
        "user_id",
        "acceleration_group",
        "battery_level",
        "round_trip_time_ms",
    )

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self._records: List[TraceRecord] = list(records) if records else []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def append(self, record: TraceRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def log(
        self,
        timestamp_ms: float,
        user_id: int,
        acceleration_group: int,
        battery_level: float,
        round_trip_time_ms: float,
    ) -> TraceRecord:
        """Create, append and return one record."""
        record = TraceRecord(
            timestamp_ms=timestamp_ms,
            user_id=user_id,
            acceleration_group=acceleration_group,
            battery_level=battery_level,
            round_trip_time_ms=round_trip_time_ms,
        )
        self.append(record)
        return record

    @property
    def records(self) -> List[TraceRecord]:
        """All records in insertion order."""
        return list(self._records)

    def sorted_records(self) -> List[TraceRecord]:
        """Records sorted chronologically (the paper sorts before slotting)."""
        return sorted(self._records, key=lambda record: record.timestamp_ms)

    def users(self) -> Set[int]:
        """Distinct user ids seen in the log."""
        return {record.user_id for record in self._records}

    def groups(self) -> Set[int]:
        """Distinct acceleration groups seen in the log."""
        return {record.acceleration_group for record in self._records}

    def time_span_ms(self) -> float:
        """Span between the first and last record, in milliseconds."""
        if not self._records:
            return 0.0
        times = [record.timestamp_ms for record in self._records]
        return max(times) - min(times)

    def window(self, start_ms: float, end_ms: float) -> "TraceLog":
        """Records with ``start_ms <= timestamp < end_ms``."""
        if end_ms < start_ms:
            raise ValueError(f"end_ms {end_ms} before start_ms {start_ms}")
        return TraceLog(
            record
            for record in self._records
            if start_ms <= record.timestamp_ms < end_ms
        )

    def users_per_group(self) -> Dict[int, Set[int]]:
        """Distinct users observed per acceleration group over the whole log."""
        result: Dict[int, Set[int]] = {}
        for record in self._records:
            result.setdefault(record.acceleration_group, set()).add(record.user_id)
        return result

    def slot_workloads(
        self,
        slot_length_ms: float,
        groups: Optional[Iterable[int]] = None,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
    ) -> List[Dict[int, Set[int]]]:
        """Slice the log into equal-length time slots of per-group user sets.

        Each element of the returned list is one time slot ``t_i``: a mapping
        from acceleration group to the set of user ids that offloaded with
        that group during the slot.  This is exactly the structure the paper's
        prediction model operates on (Section IV-A/B).

        Parameters
        ----------
        slot_length_ms:
            Length of each slot; the paper supports "any length of a time
            period, defined in (fractions of) hours" — pass e.g.
            ``hours_to_ms(1)``.
        groups:
            The acceleration groups to include; defaults to all groups seen in
            the log.  Groups with no users in a slot are present with an empty
            set (the paper's "empty set" case).
        start_ms / end_ms:
            The half-open interval to slot; default to the log's span.
        """
        if slot_length_ms <= 0:
            raise ValueError(f"slot_length_ms must be positive, got {slot_length_ms}")
        records = self.sorted_records()
        if not records:
            return []
        group_list = sorted(groups) if groups is not None else sorted(self.groups())
        if start_ms is None:
            # Align to slot boundaries (e.g. whole hours) rather than to the
            # first record, so slots correspond to provisioning periods.
            first = (records[0].timestamp_ms // slot_length_ms) * slot_length_ms
        else:
            first = start_ms
        last = records[-1].timestamp_ms if end_ms is None else end_ms
        if last < first:
            raise ValueError(f"end_ms {last} before start_ms {first}")
        slot_count = max(1, int((last - first) // slot_length_ms) + 1)
        slots: List[Dict[int, Set[int]]] = [
            {group: set() for group in group_list} for _ in range(slot_count)
        ]
        for record in records:
            if record.timestamp_ms < first or record.timestamp_ms > last:
                continue
            index = min(int((record.timestamp_ms - first) // slot_length_ms), slot_count - 1)
            slots[index].setdefault(record.acceleration_group, set()).add(record.user_id)
        return slots

    def hourly_slot_workloads(self, groups: Optional[Iterable[int]] = None) -> List[Dict[int, Set[int]]]:
        """Convenience wrapper for one-hour slots (the paper's billing period)."""
        return self.slot_workloads(MILLISECONDS_PER_HOUR, groups=groups)

    # -- persistence --------------------------------------------------------

    def to_csv(self, path: "str | Path") -> Path:
        """Write the log to a CSV file; returns the path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self._FIELDNAMES)
            writer.writeheader()
            for record in self._records:
                writer.writerow(
                    {
                        "timestamp_ms": record.timestamp_ms,
                        "user_id": record.user_id,
                        "acceleration_group": record.acceleration_group,
                        "battery_level": record.battery_level,
                        "round_trip_time_ms": record.round_trip_time_ms,
                    }
                )
        return path

    @classmethod
    def from_csv(cls, path: "str | Path") -> "TraceLog":
        """Load a log previously written by :meth:`to_csv`."""
        path = Path(path)
        log = cls()
        with path.open("r", newline="") as handle:
            reader = csv.DictReader(handle)
            missing = set(cls._FIELDNAMES) - set(reader.fieldnames or ())
            if missing:
                raise ValueError(f"CSV {path} is missing columns: {sorted(missing)}")
            for row in reader:
                log.log(
                    timestamp_ms=float(row["timestamp_ms"]),
                    user_id=int(row["user_id"]),
                    acceleration_group=int(row["acceleration_group"]),
                    battery_level=float(row["battery_level"]),
                    round_trip_time_ms=float(row["round_trip_time_ms"]),
                )
        return log
