"""Synthetic smartphone usage study.

For the model evaluation (Section VI-C) the paper deployed a tracking app on
the smartphones of 6 participants for 3 months, recorded the sessions of the
mobile applications they used, removed long nightly inactive periods, and
extracted a realistic time-varying inter-arrival rate between 100 and 5000
milliseconds, which then drives the simulator.

The raw study data is not public, so this module synthesises an equivalent
dataset:

* each participant has a personal activity profile (how heavily they use the
  phone, when they wake and sleep);
* days are filled with app sessions whose start times follow a diurnal
  intensity curve (morning, lunch and evening peaks);
* within a session, offloadable requests are issued with inter-arrival gaps in
  the 100–5000 ms range.

The derived artefact the rest of the system consumes — the empirical
inter-arrival gap distribution with night gaps removed — therefore has exactly
the statistics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.simulation.clock import MILLISECONDS_PER_HOUR
from repro.workload.arrival import EmpiricalArrivalProcess

_MS_PER_DAY = 24.0 * MILLISECONDS_PER_HOUR


@dataclass(frozen=True)
class UsageSession:
    """One app session of one participant."""

    participant_id: int
    start_ms: float
    duration_ms: float
    request_times_ms: tuple

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError(f"duration_ms must be >= 0, got {self.duration_ms}")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    @property
    def request_count(self) -> int:
        return len(self.request_times_ms)


@dataclass
class UsageTrace:
    """All sessions of one participant over the study period."""

    participant_id: int
    sessions: List[UsageSession] = field(default_factory=list)

    def request_times_ms(self) -> List[float]:
        """All request timestamps of the participant, sorted."""
        times: List[float] = []
        for session in self.sessions:
            times.extend(session.request_times_ms)
        return sorted(times)

    def inter_arrival_gaps_ms(self, max_gap_ms: float = 5000.0) -> List[float]:
        """Within-session inter-arrival gaps (night/idle gaps removed).

        Gaps above ``max_gap_ms`` are treated as inactivity boundaries and
        dropped, mirroring the paper's removal of "long inactive periods of a
        user (during night)".
        """
        if max_gap_ms <= 0:
            raise ValueError(f"max_gap_ms must be positive, got {max_gap_ms}")
        gaps: List[float] = []
        for session in self.sessions:
            times = sorted(session.request_times_ms)
            for earlier, later in zip(times, times[1:]):
                gap = later - earlier
                if 0 < gap <= max_gap_ms:
                    gaps.append(gap)
        return gaps


@dataclass
class SmartphoneUsageStudy:
    """The synthetic counterpart of the paper's 3-month, 6-participant study."""

    traces: List[UsageTrace]
    study_days: int

    @property
    def participant_count(self) -> int:
        return len(self.traces)

    def combined_gaps_ms(self, max_gap_ms: float = 5000.0) -> List[float]:
        """Pooled inter-arrival gaps across all participants."""
        gaps: List[float] = []
        for trace in self.traces:
            gaps.extend(trace.inter_arrival_gaps_ms(max_gap_ms))
        return gaps

    def arrival_process(self, max_gap_ms: float = 5000.0) -> EmpiricalArrivalProcess:
        """The empirical arrival process the simulator consumes (Section VI-C)."""
        gaps = self.combined_gaps_ms(max_gap_ms)
        if not gaps:
            raise ValueError("study produced no inter-arrival gaps")
        return EmpiricalArrivalProcess(gaps)

    def hourly_activity_profile(self) -> Dict[int, float]:
        """Fraction of all requests falling in each hour of day."""
        counts = np.zeros(24, dtype=float)
        for trace in self.traces:
            for time in trace.request_times_ms():
                hour = int((time % _MS_PER_DAY) // MILLISECONDS_PER_HOUR)
                counts[hour] += 1
        total = counts.sum()
        if total == 0:
            return {hour: 0.0 for hour in range(24)}
        return {hour: float(counts[hour] / total) for hour in range(24)}


def _diurnal_intensity(hour: float) -> float:
    """Relative session-start intensity by hour of day.

    Zero at night (sleep), with morning, lunchtime and evening peaks; the
    evening peak is the strongest, consistent with common smartphone usage
    patterns.
    """
    if hour < 6.5 or hour >= 23.5:
        return 0.0
    morning = np.exp(-((hour - 8.5) ** 2) / (2 * 1.5 ** 2))
    lunch = 0.8 * np.exp(-((hour - 12.5) ** 2) / (2 * 1.2 ** 2))
    evening = 1.4 * np.exp(-((hour - 20.0) ** 2) / (2 * 2.0 ** 2))
    return float(0.15 + morning + lunch + evening)


def synthesize_usage_study(
    rng: np.random.Generator,
    *,
    participants: int = 6,
    study_days: int = 90,
    mean_sessions_per_day: float = 40.0,
    mean_session_minutes: float = 4.0,
) -> SmartphoneUsageStudy:
    """Generate the synthetic usage study.

    Parameters mirror the paper's setup: 6 participants over 3 months
    (≈90 days).  Session counts and lengths are drawn per participant so the
    population is heterogeneous.
    """
    if participants < 1:
        raise ValueError(f"participants must be >= 1, got {participants}")
    if study_days < 1:
        raise ValueError(f"study_days must be >= 1, got {study_days}")
    if mean_sessions_per_day <= 0 or mean_session_minutes <= 0:
        raise ValueError("session parameters must be positive")

    hours = np.arange(0, 24, 0.25)
    intensity = np.array([_diurnal_intensity(hour) for hour in hours])
    intensity_probability = intensity / intensity.sum()

    traces: List[UsageTrace] = []
    for participant in range(participants):
        # Per-participant heavy/light usage multiplier.
        usage_multiplier = float(rng.uniform(0.6, 1.5))
        trace = UsageTrace(participant_id=participant)
        for day in range(study_days):
            day_start = day * _MS_PER_DAY
            session_count = rng.poisson(mean_sessions_per_day * usage_multiplier)
            if session_count == 0:
                continue
            start_hours = rng.choice(hours, size=session_count, p=intensity_probability)
            start_hours = np.sort(start_hours + rng.uniform(0, 0.25, size=session_count))
            for start_hour in start_hours:
                session_start = day_start + start_hour * MILLISECONDS_PER_HOUR
                duration_ms = float(
                    rng.exponential(mean_session_minutes * 60.0 * 1000.0)
                )
                duration_ms = min(max(duration_ms, 10_000.0), 45 * 60 * 1000.0)
                request_times: List[float] = []
                cursor = session_start
                while cursor < session_start + duration_ms:
                    gap = float(rng.uniform(100.0, 5000.0))
                    cursor += gap
                    if cursor < session_start + duration_ms:
                        request_times.append(cursor)
                trace.sessions.append(
                    UsageSession(
                        participant_id=participant,
                        start_ms=session_start,
                        duration_ms=duration_ms,
                        request_times_ms=tuple(request_times),
                    )
                )
        traces.append(trace)
    return SmartphoneUsageStudy(traces=traces, study_days=study_days)
