"""Workload generators: the two operational modes of the paper's simulator.

Section V of the paper describes a simulator with two modes:

* **concurrent mode** — "the simulator creates n concurrent threads that
  offload a random computational task loaded from a pool of common
  algorithms"; each thread represents one mobile device.  This mode is used
  to benchmark the cloud instances (Fig. 4–7).
* **inter-arrival rate mode** — "the simulator takes as parameters the number
  of devices (workload), the inter-arrival time between offloading requests
  and the time that the workload is active", producing a realistic
  time-varying workload (Fig. 8–10).

Both modes here produce plain :class:`WorkloadRequest` records (arrival time,
user, task, work), which the experiments feed either into the analytic
performance model or into the discrete-event simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.mobile.tasks import OffloadableTask, TaskPool
from repro.workload.arrival import ArrivalProcess
from repro.simulation.clock import MILLISECONDS_PER_MINUTE


@dataclass(frozen=True)
class WorkloadRequest:
    """One offloading request to be injected into the system."""

    request_id: int
    user_id: int
    task_name: str
    work_units: float
    arrival_ms: float

    def __post_init__(self) -> None:
        if self.work_units <= 0:
            raise ValueError(f"work_units must be positive, got {self.work_units}")
        if self.arrival_ms < 0:
            raise ValueError(f"arrival_ms must be >= 0, got {self.arrival_ms}")


class ConcurrentWorkloadGenerator:
    """Concurrent-mode workload: bursts of simultaneous offloads.

    Each *round* injects one request per simulated device at (almost) the same
    instant; rounds are separated by ``round_gap_ms`` (the paper uses a
    1-minute inter-arrival between stress rounds to let the server cool
    down).
    """

    def __init__(
        self,
        task_pool: TaskPool,
        *,
        rng: np.random.Generator,
        round_gap_ms: float = MILLISECONDS_PER_MINUTE,
        intra_round_jitter_ms: float = 5.0,
        fixed_task: Optional[str] = None,
    ) -> None:
        if round_gap_ms <= 0:
            raise ValueError(f"round_gap_ms must be positive, got {round_gap_ms}")
        if intra_round_jitter_ms < 0:
            raise ValueError(
                f"intra_round_jitter_ms must be >= 0, got {intra_round_jitter_ms}"
            )
        self.task_pool = task_pool
        self.round_gap_ms = round_gap_ms
        self.intra_round_jitter_ms = intra_round_jitter_ms
        self.fixed_task = fixed_task
        self._rng = rng
        self._request_ids = itertools.count()

    def _pick_task(self) -> OffloadableTask:
        if self.fixed_task is not None:
            return self.task_pool.get(self.fixed_task)
        return self.task_pool.sample(self._rng)

    def generate_round(self, concurrent_users: int, start_ms: float = 0.0) -> List[WorkloadRequest]:
        """One burst of ``concurrent_users`` near-simultaneous requests."""
        if concurrent_users < 1:
            raise ValueError(f"concurrent_users must be >= 1, got {concurrent_users}")
        requests: List[WorkloadRequest] = []
        for user_id in range(concurrent_users):
            task = self._pick_task()
            jitter = float(self._rng.uniform(0.0, self.intra_round_jitter_ms))
            requests.append(
                WorkloadRequest(
                    request_id=next(self._request_ids),
                    user_id=user_id,
                    task_name=task.name,
                    work_units=task.sample_work_units(self._rng),
                    arrival_ms=start_ms + jitter,
                )
            )
        return requests

    def generate(
        self,
        concurrent_users: int,
        *,
        rounds: int,
        start_ms: float = 0.0,
    ) -> List[WorkloadRequest]:
        """``rounds`` bursts of ``concurrent_users`` requests each."""
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        requests: List[WorkloadRequest] = []
        for round_index in range(rounds):
            round_start = start_ms + round_index * self.round_gap_ms
            requests.extend(self.generate_round(concurrent_users, round_start))
        return requests


class InterArrivalWorkloadGenerator:
    """Inter-arrival-mode workload: a stream of requests from a device population.

    Requests arrive according to an :class:`~repro.workload.arrival.ArrivalProcess`
    over ``[start_ms, end_ms)``; each request is attributed to a device drawn
    uniformly from the population (the paper's simulator interleaves devices
    the same way), and carries a random task from the pool unless
    ``fixed_task`` pins it (the model evaluation uses the static minimax task
    for every request).
    """

    def __init__(
        self,
        task_pool: TaskPool,
        *,
        rng: np.random.Generator,
        fixed_task: Optional[str] = None,
    ) -> None:
        self.task_pool = task_pool
        self.fixed_task = fixed_task
        self._rng = rng
        self._request_ids = itertools.count()

    def _pick_task(self) -> OffloadableTask:
        if self.fixed_task is not None:
            return self.task_pool.get(self.fixed_task)
        return self.task_pool.sample(self._rng)

    def generate(
        self,
        *,
        devices: int,
        arrival_process: ArrivalProcess,
        start_ms: float,
        end_ms: float,
        max_requests: Optional[int] = None,
    ) -> List[WorkloadRequest]:
        """Generate the request stream for one active period."""
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        arrival_times = arrival_process.arrival_times_ms(
            self._rng, start_ms=start_ms, end_ms=end_ms, max_arrivals=max_requests
        )
        requests: List[WorkloadRequest] = []
        for arrival in arrival_times:
            task = self._pick_task()
            requests.append(
                WorkloadRequest(
                    request_id=next(self._request_ids),
                    user_id=int(self._rng.integers(0, devices)),
                    task_name=task.name,
                    work_units=task.sample_work_units(self._rng),
                    arrival_ms=arrival,
                )
            )
        return requests

    def generate_piecewise(
        self,
        *,
        devices: int,
        segments: Sequence[tuple],
        process_factory,
        max_requests: Optional[int] = None,
    ) -> List[WorkloadRequest]:
        """Generate a stream whose arrival rate changes per segment.

        ``segments`` is a sequence of ``(start_ms, end_ms, rate_hz)`` tuples
        (see :func:`repro.workload.arrival.doubling_rate_schedule`) and
        ``process_factory`` maps a rate in Hz to an
        :class:`~repro.workload.arrival.ArrivalProcess`.
        """
        requests: List[WorkloadRequest] = []
        for start_ms, end_ms, rate_hz in segments:
            process = process_factory(rate_hz)
            requests.extend(
                self.generate(
                    devices=devices,
                    arrival_process=process,
                    start_ms=start_ms,
                    end_ms=end_ms,
                    max_requests=max_requests,
                )
            )
        return requests
