"""Span-based wall-clock tracer for the simulation's structural phases.

The registry (:mod:`repro.telemetry.registry`) answers *what the simulation
did*; the tracer answers *where the real time went*.  Spans nest around the
hot structural phases of a run — ``plan.generate``, ``slot.broker``,
``slot.serve``, ``slot.control``, ``stats.fold`` — so the per-slot timeline
pins exactly which phase the flat per-request cost lives in, without a
sampling profiler.

Spans are wall-clock measurements (``time.perf_counter``), so unlike every
registry metric they legitimately differ between runs of the same seed; the
zero-cost parity suite therefore compares *simulation results*, never span
durations.  Exports:

* :meth:`SpanTracer.phase_rows` — per-phase totals with **self time**
  (duration minus child spans), the number the "top phases by cost" summary
  ranks by;
* :meth:`SpanTracer.to_chrome_trace` — the Chrome trace-event JSON format,
  viewable in ``chrome://tracing`` / Perfetto;
* :meth:`SpanTracer.coverage` — the fraction of the root span's wall time
  attributed to child phases (the acceptance gate asks for >= 90%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class SpanRecord:
    """One closed span: a named phase with nesting metadata.

    Times are seconds relative to the tracer's epoch (its construction
    instant), which keeps Chrome-trace timestamps small and stable.
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: int  # index into the tracer's span list; -1 for root spans
    slot: Optional[int] = None  # provisioning-slot index, when phase-per-slot
    children_s: float = 0.0  # summed durations of direct children

    @property
    def self_s(self) -> float:
        """Exclusive time: duration not spent in child spans."""
        return max(self.duration_s - self.children_s, 0.0)


class _OpenSpan:
    """Context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_index")

    def __init__(self, tracer: "SpanTracer", index: int) -> None:
        self._tracer = tracer
        self._index = index

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._index)
        return False


class SpanTracer:
    """Records nested wall-clock spans; single-threaded by design."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self._stack: List[int] = []

    def span(self, name: str, *, slot: Optional[int] = None) -> _OpenSpan:
        """Open a span; close it by exiting the returned context manager."""
        if not name:
            raise ValueError("span name must be non-empty")
        parent = self._stack[-1] if self._stack else -1
        record = SpanRecord(
            name=name,
            start_s=time.perf_counter() - self._epoch,
            duration_s=0.0,
            depth=len(self._stack),
            parent=parent,
            slot=slot,
        )
        index = len(self.spans)
        self.spans.append(record)
        self._stack.append(index)
        return _OpenSpan(self, index)

    def _close(self, index: int) -> None:
        if not self._stack or self._stack[-1] != index:
            raise RuntimeError(
                f"span {self.spans[index].name!r} closed out of order"
            )
        self._stack.pop()
        record = self.spans[index]
        record.duration_s = (
            time.perf_counter() - self._epoch - record.start_s
        )
        if record.parent >= 0:
            self.spans[record.parent].children_s += record.duration_s

    # -- aggregation ---------------------------------------------------------

    @property
    def total_wall_s(self) -> float:
        """Summed duration of the root (depth-0) spans."""
        return sum(span.duration_s for span in self.spans if span.depth == 0)

    def coverage(self) -> float:
        """Fraction of root wall time attributed to child spans (0 when empty)."""
        roots = [span for span in self.spans if span.depth == 0]
        total = sum(span.duration_s for span in roots)
        if total <= 0:
            return 0.0
        return min(sum(span.children_s for span in roots) / total, 1.0)

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase-name aggregation: calls, total and self (exclusive) time."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            bucket = totals.setdefault(
                span.name, {"calls": 0.0, "total_s": 0.0, "self_s": 0.0}
            )
            bucket["calls"] += 1.0
            bucket["total_s"] += span.duration_s
            bucket["self_s"] += span.self_s
        return totals

    def phase_rows(self) -> List[Dict[str, object]]:
        """Display rows, ranked by self time (the CLI summary-table schema)."""
        wall = self.total_wall_s
        rows = []
        for name, bucket in self.phase_totals().items():
            rows.append(
                {
                    "phase": name,
                    "calls": int(bucket["calls"]),
                    "total_ms": round(1000.0 * bucket["total_s"], 2),
                    "self_ms": round(1000.0 * bucket["self_s"], 2),
                    "share_pct": round(100.0 * bucket["self_s"] / wall, 1)
                    if wall > 0
                    else 0.0,
                }
            )
        rows.sort(key=lambda row: (-float(row["self_ms"]), row["phase"]))
        return rows

    def top_phases(self, n: int = 3) -> List["tuple[str, float]"]:
        """The ``n`` costliest phases as ``(name, share-of-wall)`` pairs."""
        wall = self.total_wall_s
        if wall <= 0:
            return []
        ranked = sorted(
            self.phase_totals().items(), key=lambda item: -item[1]["self_s"]
        )
        return [(name, bucket["self_s"] / wall) for name, bucket in ranked[:n]]

    # -- exports -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly span list (milliseconds) plus the phase aggregation."""
        return {
            "total_wall_ms": round(1000.0 * self.total_wall_s, 3),
            "coverage": round(self.coverage(), 4),
            "spans": [
                {
                    "name": span.name,
                    "start_ms": round(1000.0 * span.start_s, 3),
                    "duration_ms": round(1000.0 * span.duration_s, 3),
                    "self_ms": round(1000.0 * span.self_s, 3),
                    "depth": span.depth,
                    "slot": span.slot,
                }
                for span in self.spans
            ],
            "phases": self.phase_rows(),
        }

    def to_chrome_trace(self) -> Dict[str, object]:
        """The Chrome trace-event format (``chrome://tracing`` / Perfetto).

        Every span becomes one complete (``ph: "X"``) event on a single
        process/thread track; timestamps and durations are microseconds, as
        the format requires.
        """
        events = []
        for span in self.spans:
            event: Dict[str, object] = {
                "name": span.name,
                "cat": "phase",
                "ph": "X",
                "ts": round(1e6 * span.start_s, 1),
                "dur": round(1e6 * span.duration_s, 1),
                "pid": 0,
                "tid": 0,
            }
            if span.slot is not None:
                event["args"] = {"slot": span.slot}
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}
