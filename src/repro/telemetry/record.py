"""The run-record artifact: one serialisable flight-recorder file per run.

A :class:`RunRecord` bundles everything a later ``report`` or ``diff`` needs
to reconstruct a run without re-simulating it: the spec hash and seed that
pin *which* run it was, the folded registry (counters, gauges, histograms),
the per-slot series from the recorder, the headline :class:`ScenarioResult`
numbers, and the wall-clock phase rows from the tracer.

The file splits into a **canonical** part and a non-canonical envelope:

* canonical — schema id, scenario, execution, seed, spec hash, slot count,
  counters, gauges, histograms, series, result.  All simulated quantities:
  same seed, same bytes (:meth:`RunRecord.canonical_bytes` is the pinned
  contract, compared verbatim by the determinism suite).
* non-canonical — ``environment`` (git describe, interpreter, platform,
  creation time) and ``trace`` (phase self-times).  Wall clock and host
  facts legitimately vary between reruns; ``diff`` never reads them.

The on-disk format is a single JSON object with a ``schema`` field
(:data:`RECORD_SCHEMA`); loaders reject unknown majors so a future v2 can
change shape without silently mis-parsing v1 consumers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: Versioned schema identifier written into every record file.
RECORD_SCHEMA = "repro.run-record/1"


def _plain(value):
    """Reduce a value to JSON-safe plain Python (NaN/Inf become ``None``)."""
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item"):  # numpy scalar
        return _plain(value.item())
    return value


def spec_hash(spec) -> str:
    """A stable content hash of a :class:`ScenarioSpec`.

    Hashes the sorted-keys JSON of ``spec.to_dict()`` so two specs hash
    equal exactly when every knob (including nested site/fault config)
    matches, independent of construction order.
    """
    payload = json.dumps(spec.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One run's flight-recorder artifact (see module docstring)."""

    schema: str
    scenario: str
    execution: str
    seed: int
    spec_hash: str
    slots: int
    result: Dict[str, object]
    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, object]
    series: Dict[str, List[float]]
    environment: Dict[str, object] = dataclasses.field(default_factory=dict)
    trace: Dict[str, object] = dataclasses.field(default_factory=dict)

    # -- canonical contract ---------------------------------------------------

    def canonical_dict(self) -> Dict[str, object]:
        """The deterministic part only — what same-seed reruns must repeat."""
        return {
            "schema": self.schema,
            "scenario": self.scenario,
            "execution": self.execution,
            "seed": self.seed,
            "spec_hash": self.spec_hash,
            "slots": self.slots,
            "result": self.result,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "series": self.series,
        }

    def canonical_bytes(self) -> bytes:
        """Byte-stable encoding of :meth:`canonical_dict` (the pinned contract)."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    # -- serialisation --------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        payload = self.canonical_dict()
        payload["environment"] = self.environment
        payload["trace"] = self.trace
        return payload

    def save(self, path) -> Path:
        """Write the record as pretty-printed JSON, creating parent dirs."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @property
    def label(self) -> str:
        return f"{self.scenario}/{self.execution}/seed{self.seed}"


def record_filename(record: RunRecord) -> str:
    """The conventional per-run file name inside a ``--record-out`` directory."""
    return f"{record.scenario}-{record.execution}-seed{record.seed}.json"


def build_run_record(
    spec, result, telemetry, *, environment=True, shards: Optional[int] = None
) -> RunRecord:
    """Assemble a :class:`RunRecord` from a finished run.

    ``telemetry`` must be a live :class:`~repro.telemetry.facade.Telemetry`
    (the recorder and registry are read, never mutated).  Pass
    ``environment=False`` to omit the host envelope (useful in tests that
    compare full dicts).  ``shards`` notes how many workers a sharded run
    folded; it lands in the *non-canonical* ``environment`` envelope so a
    ``shards=1`` run stays byte-identical to an unsharded one.
    """
    if not telemetry.enabled:
        raise ValueError("building a run record requires live telemetry")
    metrics = telemetry.registry.as_dict()
    recorded = telemetry.recorder.as_dict()
    env: Dict[str, object] = {}
    if environment:
        env = {
            "git_describe": git_describe(),
            "python": platform.python_version(),
            "platform": sys.platform,
            "argv": list(sys.argv),
        }
    if shards is not None:
        env["shards"] = int(shards)
    return RunRecord(
        schema=RECORD_SCHEMA,
        scenario=spec.name,
        execution=spec.execution,
        seed=int(result.seed),
        spec_hash=spec_hash(spec),
        slots=int(recorded["slots"]),
        result=_plain(dataclasses.asdict(result)),
        counters=_plain(metrics["counters"]),
        gauges=_plain(metrics["gauges"]),
        histograms=_plain(metrics["histograms"]),
        series=_plain(recorded["series"]),
        environment=env,
        trace={"phases": telemetry.tracer.phase_rows()},
    )


def load_run_record(path) -> RunRecord:
    """Read a record file back, validating the schema version."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = payload.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro.run-record/"):
        raise ValueError(f"{path}: not a run-record file (schema={schema!r})")
    major = schema.rsplit("/", 1)[-1]
    if major != RECORD_SCHEMA.rsplit("/", 1)[-1]:
        raise ValueError(
            f"{path}: unsupported run-record schema {schema!r} "
            f"(this build reads {RECORD_SCHEMA!r})"
        )
    return RunRecord(
        schema=schema,
        scenario=payload["scenario"],
        execution=payload["execution"],
        seed=int(payload["seed"]),
        spec_hash=payload["spec_hash"],
        slots=int(payload["slots"]),
        result=payload.get("result", {}),
        counters=payload.get("counters", {}),
        gauges=payload.get("gauges", {}),
        histograms=payload.get("histograms", {}),
        series=payload.get("series", {}),
        environment=payload.get("environment", {}),
        trace=payload.get("trace", {}),
    )
