"""Per-control-slot time series behind the telemetry facade.

The registry (:mod:`repro.telemetry.registry`) folds a run into endpoint
sums; the recorder keeps the *trajectory*: one value per provisioning slot
per named series, exactly slot-aligned between the event and batched
executors.  Two sources feed it:

* **Live fleet samples** — the executors call :meth:`SlotSeriesRecorder.sample_fleet`
  once per slot boundary, right after that stack's scaling actions, so the
  instance counts and boot states are the fleet exactly as the autoscaler
  left it.  Per-site stacks sample under a ``site.<name>`` prefix.
* **Fold-time ingestion** — everything else (arrival counts, broker routing
  shares and spill counts, fluid backlog and admission headroom from the
  broker's load history, fault verdicts attributed to their arrival slot) is
  read once at ``stats.fold`` from state the run accumulated anyway, guarded
  by ``telemetry.enabled``.

Every series value is a **simulated** quantity: same seed, same bytes, in
either execution mode (wall time stays in the tracer).  The disabled path is
the usual null object — one attribute access plus a no-op call per slot,
never per request — so results stay bit-identical with recording on or off.

Series name glossary (single-site names; multi-site adds ``site.<name>.``
prefixed variants and the broker series):

==================================  =============================================
series                              per-slot meaning
==================================  =============================================
slot.requests                       requests that *arrived* in the slot window
fleet.instances_running             ready instances right after the slot's scaling
fleet.instances_booting             launched but still booting at the boundary
fleet.instances_launched            cumulative launches up to the boundary
site.<name>.requests                requests the broker routed to the site
site.<name>.routing_share           the site's fraction of the slot's routed load
site.<name>.backlog_work_units      broker's fluid backlog estimate at the boundary
site.<name>.in_flight_requests      broker's fluid in-flight estimate
site.<name>.admission_headroom      remaining admission capacity (requests)
broker.spilled                      mid-slot cross-site spill diversions
faults.retried                      arrivals that needed >= 1 retry
faults.failed_over                  arrivals re-routed by retry/outage failover
faults.degraded_local               arrivals that fell back to on-device execution
faults.dropped                      arrivals that exhausted retries with no fallback
==================================  =============================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class NullSlotSeriesRecorder:
    """The disabled recorder: every operation is a shared no-op."""

    enabled = False

    def sample_fleet(self, slot: int, provisioner, prefix: str = "") -> None:
        pass

    def append(self, name: str, slot: int, value: float) -> None:
        pass

    def ingest_plan(self, plan, *, slot_ms: float, periods: int) -> None:
        pass

    def ingest_broker(self, broker, site_names: Sequence[str]) -> None:
        pass

    def ingest_faults(
        self, overlay, plan, *, slot_ms: float, periods: int, site_ids=None
    ) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"slots": 0, "series": {}}


#: The process-wide disabled recorder (stateless, safe to share).
NULL_RECORDER = NullSlotSeriesRecorder()


class SlotSeriesRecorder:
    """Collects named per-slot series for one run.

    Series are plain ``name -> list of floats`` with one entry per
    provisioning slot, appended in slot order.  ``append`` asserts the slot
    index matches the series length so misaligned instrumentation fails
    loudly instead of silently shifting a trajectory.
    """

    enabled = True

    def __init__(self) -> None:
        self._series: Dict[str, List[float]] = {}

    def series(self, name: str) -> List[float]:
        values = self._series.get(name)
        if values is None:
            values = self._series[name] = []
        return values

    def append(self, name: str, slot: int, value: float) -> None:
        """Append ``value`` as slot ``slot`` of series ``name`` (in order)."""
        values = self.series(name)
        if len(values) != slot:
            raise ValueError(
                f"series {name!r} expected slot {len(values)}, got {slot}"
            )
        values.append(float(value))

    def set_series(self, name: str, values: "np.ndarray | Sequence[float]") -> None:
        """Replace series ``name`` wholesale (the fold-time ingestion path)."""
        self._series[name] = [float(value) for value in values]

    # -- live sampling (called by the executors, once per slot) ---------------

    def sample_fleet(self, slot: int, provisioner, prefix: str = "") -> None:
        """Record one serving stack's fleet state at a slot boundary.

        Called right after the stack's scaling actions for the slot, so both
        executors observe the identical post-scaling fleet (the engine clock
        sits exactly on the boundary in either mode).  ``provisioner``
        duck-types :class:`~repro.cloud.provisioner.Provisioner`.
        """
        dot = f"{prefix}." if prefix else ""
        ready = provisioner.running_count
        total = len(provisioner.running_instances)
        self.append(f"{dot}fleet.instances_running", slot, float(ready))
        self.append(f"{dot}fleet.instances_booting", slot, float(total - ready))
        self.append(
            f"{dot}fleet.instances_launched", slot, float(provisioner.launched_count)
        )

    # -- fold-time ingestion (called at stats.fold, telemetry.enabled only) ---

    def _slot_counts(
        self, values_ms: np.ndarray, mask, *, slot_ms: float, periods: int
    ) -> np.ndarray:
        """Count masked arrival instants per provisioning slot."""
        picked = values_ms if mask is None else values_ms[mask]
        slots = np.minimum(
            (picked / slot_ms).astype(np.int64), periods - 1
        )
        return np.bincount(slots, minlength=periods)

    def ingest_plan(self, plan, *, slot_ms: float, periods: int) -> None:
        """Per-slot arrival counts from the shared pre-drawn request plan."""
        self.set_series(
            "slot.requests",
            self._slot_counts(plan.arrival_ms, None, slot_ms=slot_ms, periods=periods),
        )

    def ingest_broker(self, broker, site_names: Sequence[str]) -> None:
        """Routing, spill and fluid-state series from a slot broker's history.

        ``broker`` duck-types the slot brokers of :mod:`repro.multisite.broker`:
        ``slot_site_requests`` (one per-site request vector per slot),
        ``slot_spilled``, and — for the dynamic policy — ``load_history``
        (one :class:`~repro.multisite.broker.SiteLoadState` tuple per
        boundary).
        """
        per_slot = list(broker.slot_site_requests)
        if per_slot:
            matrix = np.asarray(per_slot, dtype=float)
            totals = matrix.sum(axis=1)
            safe = np.where(totals > 0, totals, 1.0)
            for index, name in enumerate(site_names):
                self.set_series(f"site.{name}.requests", matrix[:, index])
                self.set_series(
                    f"site.{name}.routing_share",
                    np.where(totals > 0, matrix[:, index] / safe, 0.0),
                )
        spilled = list(getattr(broker, "slot_spilled", ()))
        if spilled:
            self.set_series("broker.spilled", spilled)
        history = list(getattr(broker, "load_history", ()))
        if history:
            for index, name in enumerate(site_names):
                states = [boundary[index] for boundary in history]
                self.set_series(
                    f"site.{name}.backlog_work_units",
                    [state.backlog_work_units for state in states],
                )
                self.set_series(
                    f"site.{name}.in_flight_requests",
                    [state.in_flight_requests for state in states],
                )
                self.set_series(
                    f"site.{name}.admission_headroom",
                    [float(state.admission_capacity_requests) for state in states],
                )

    def ingest_faults(
        self,
        overlay,
        plan,
        *,
        slot_ms: float,
        periods: int,
        site_ids: Optional[np.ndarray] = None,
    ) -> None:
        """Fault verdicts attributed to the slot each request *arrived* in.

        Mirrors :meth:`~repro.faults.overlay.FaultOverlay.fault_summary`:
        ``site_ids`` (multi-site runs) filters out broker-unrouted requests,
        which were dropped before the fault plane could see them.
        """
        from repro.faults.overlay import OUTCOME_DEGRADED_LOCAL, OUTCOME_DROPPED

        routed = (
            np.ones(len(plan), dtype=bool) if site_ids is None else site_ids >= 0
        )
        arrivals = plan.arrival_ms
        for name, mask in (
            ("faults.retried", routed & (overlay.attempts > 1)),
            ("faults.failed_over", routed & overlay.rerouted),
            (
                "faults.degraded_local",
                routed & (overlay.outcome == OUTCOME_DEGRADED_LOCAL),
            ),
            ("faults.dropped", routed & (overlay.outcome == OUTCOME_DROPPED)),
        ):
            self.set_series(
                name,
                self._slot_counts(arrivals, mask, slot_ms=slot_ms, periods=periods),
            )

    def absorb_payload(self, payload: Dict[str, object]) -> None:
        """Fold another recorder's :meth:`as_dict` payload into this one.

        The sharded runner's cross-process series merge: count-valued series
        (``slot.requests``, ``site.<name>.requests``, fault verdict counts)
        are additive across shards, so every series is summed elementwise.
        Fleet-state series are summed too — each shard runs its own control
        plane replica, so the merged trajectory is the fleet-wide instance
        total, one of the documented sharding semantics.  Series present in
        only one side are taken as-is; lengths must agree when both sides
        carry a series (all shards run the same slot grid).
        """
        for name, values in payload.get("series", {}).items():
            existing = self._series.get(name)
            if existing is None:
                self.set_series(name, values)
                continue
            if len(existing) != len(values):
                raise ValueError(
                    f"series {name!r} length differs across shards: "
                    f"{len(existing)} vs {len(values)}"
                )
            self._series[name] = [
                float(a) + float(b) for a, b in zip(existing, values)
            ]

    # -- exports --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def names(self) -> List[str]:
        return sorted(self._series)

    def slots(self) -> int:
        """The longest recorded series length (0 when nothing was recorded)."""
        return max((len(values) for values in self._series.values()), default=0)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly export: series sorted by name, values as plain floats."""
        return {
            "slots": self.slots(),
            "series": {name: list(self._series[name]) for name in sorted(self._series)},
        }
