"""A/B diffing of run records: aligned deltas plus a regression verdict.

``diff_records`` compares only the *canonical* measurement surface of two
:class:`~repro.telemetry.record.RunRecord` files — counters aligned by
instrument name, series aligned by name and slot index.  Gauges, histograms,
wall-clock trace rows and the host envelope are deliberately out of scope:
gauges duplicate result scalars, histogram shape changes always move a
counter too, and wall clock is never comparable across runs.

The verdict is three-valued:

* ``identical`` — every aligned counter and series matches exactly (the
  contract two same-seed runs must meet).
* ``ok`` — differences exist but every one sits within the configured
  thresholds.
* ``regression`` — at least one counter delta or series divergence exceeds
  its threshold (the CLI exits non-zero on this).

Thresholds default to zero — any difference is a regression unless the
caller says how much drift is acceptable — which makes the same-seed CI
check a plain exit-code assertion.
"""

from __future__ import annotations

import dataclasses
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence

from repro.telemetry.record import RunRecord


@dataclasses.dataclass(frozen=True)
class CounterDelta:
    """One aligned counter: values from both records and their difference."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def delta_pct(self) -> Optional[float]:
        """Relative change in percent; ``None`` when the baseline is zero."""
        if self.a == 0:
            return None if self.b == 0 else float("inf")
        return 100.0 * (self.b - self.a) / abs(self.a)


@dataclasses.dataclass(frozen=True)
class SeriesDivergence:
    """One aligned series: elementwise divergence over the shared slot range."""

    name: str
    slots_a: int
    slots_b: int
    max_divergence: float
    mean_divergence: float

    @property
    def length_mismatch(self) -> bool:
        return self.slots_a != self.slots_b


@dataclasses.dataclass(frozen=True)
class RecordDiff:
    """The full comparison of two run records."""

    label_a: str
    label_b: str
    same_spec: bool
    counters: List[CounterDelta]
    series: List[SeriesDivergence]
    only_in_a: List[str]
    only_in_b: List[str]
    max_counter_delta_pct: float
    max_series_divergence: float

    @property
    def changed_counters(self) -> List[CounterDelta]:
        return [entry for entry in self.counters if entry.delta != 0]

    @property
    def diverged_series(self) -> List[SeriesDivergence]:
        return [
            entry
            for entry in self.series
            if entry.max_divergence > 0 or entry.length_mismatch
        ]

    @property
    def identical(self) -> bool:
        return (
            not self.changed_counters
            and not self.diverged_series
            and not self.only_in_a
            and not self.only_in_b
        )

    def _counter_regressions(self) -> List[CounterDelta]:
        flagged = []
        for entry in self.changed_counters:
            pct = entry.delta_pct
            if pct is None:
                continue
            if pct == float("inf") or abs(pct) > self.max_counter_delta_pct:
                flagged.append(entry)
        return flagged

    def _series_regressions(self) -> List[SeriesDivergence]:
        return [
            entry
            for entry in self.series
            if entry.length_mismatch
            or entry.max_divergence > self.max_series_divergence
        ]

    @property
    def verdict(self) -> str:
        if self.identical:
            return "identical"
        if (
            self._counter_regressions()
            or self._series_regressions()
            or self.only_in_a
            or self.only_in_b
        ):
            return "regression"
        return "ok"

    # -- exports --------------------------------------------------------------

    def counter(self, name: str) -> Optional[CounterDelta]:
        for entry in self.counters:
            if entry.name == name:
                return entry
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "same_spec": self.same_spec,
            "verdict": self.verdict,
            "thresholds": {
                "max_counter_delta_pct": self.max_counter_delta_pct,
                "max_series_divergence": self.max_series_divergence,
            },
            "counters": [
                {
                    "name": entry.name,
                    "a": entry.a,
                    "b": entry.b,
                    "delta": entry.delta,
                    "delta_pct": (
                        None
                        if entry.delta_pct in (None, float("inf"))
                        else entry.delta_pct
                    ),
                }
                for entry in self.counters
            ],
            "series": [
                {
                    "name": entry.name,
                    "slots_a": entry.slots_a,
                    "slots_b": entry.slots_b,
                    "max_divergence": entry.max_divergence,
                    "mean_divergence": entry.mean_divergence,
                }
                for entry in self.series
            ],
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
        }

    def summary_lines(self, *, limit: int = 12) -> List[str]:
        """The human-facing report: changed instruments ranked, then verdict."""
        lines = [f"diff {self.label_a}  vs  {self.label_b}"]
        if not self.same_spec:
            lines.append("note: spec hashes differ — comparing different configs")
        changed = sorted(
            self.changed_counters,
            key=lambda entry: abs(entry.delta),
            reverse=True,
        )
        if changed:
            lines.append(f"counters changed ({len(changed)}):")
            for entry in changed[:limit]:
                pct = entry.delta_pct
                rel = (
                    "new"
                    if pct == float("inf")
                    else f"{pct:+.1f}%" if pct is not None else ""
                )
                lines.append(
                    f"  {entry.name:<44} {entry.a:>12g} -> {entry.b:<12g} "
                    f"({entry.delta:+g} {rel})".rstrip()
                )
            if len(changed) > limit:
                lines.append(f"  ... and {len(changed) - limit} more")
        else:
            lines.append("counters: no differences")
        diverged = sorted(
            self.diverged_series,
            key=lambda entry: entry.max_divergence,
            reverse=True,
        )
        if diverged:
            lines.append(f"series diverged ({len(diverged)}/{len(self.series)}):")
            for entry in diverged[:limit]:
                shape = (
                    f" [slots {entry.slots_a} vs {entry.slots_b}]"
                    if entry.length_mismatch
                    else ""
                )
                lines.append(
                    f"  {entry.name:<44} max {entry.max_divergence:g} "
                    f"mean {entry.mean_divergence:g}{shape}"
                )
            if len(diverged) > limit:
                lines.append(f"  ... and {len(diverged) - limit} more")
        else:
            lines.append(f"series: no divergence across {len(self.series)} aligned")
        for side, names in (("a", self.only_in_a), ("b", self.only_in_b)):
            if names:
                lines.append(
                    f"only in {side}: {', '.join(names[:6])}"
                    + (" ..." if len(names) > 6 else "")
                )
        lines.append(f"verdict: {self.verdict}")
        return lines


def _matches(name: str, patterns: Optional[Sequence[str]]) -> bool:
    """Whether ``name`` passes the filter (no patterns = everything passes)."""
    if not patterns:
        return True
    return any(fnmatchcase(name, pattern) for pattern in patterns)


def diff_records(
    a: RunRecord,
    b: RunRecord,
    *,
    max_counter_delta_pct: float = 0.0,
    max_series_divergence: float = 0.0,
    counter_filter: Optional[Sequence[str]] = None,
    series_filter: Optional[Sequence[str]] = None,
) -> RecordDiff:
    """Align two records by instrument name and slot index and compare.

    ``counter_filter``/``series_filter`` restrict the comparison to
    instruments whose names match at least one ``fnmatch`` pattern (e.g.
    ``["slot.*", "requests.*"]``).  Filtered-out instruments are ignored
    entirely — they contribute neither deltas nor only-in-one-side entries —
    which is how the sharded CI smoke compares only the signals that are
    invariant across shard counts (arrival series, request counters) while
    the replicated control plane legitimately diverges.
    """
    counter_names = sorted(
        name
        for name in set(a.counters) | set(b.counters)
        if _matches(name, counter_filter)
    )
    counters = [
        CounterDelta(
            name=name,
            a=float(a.counters.get(name, 0.0)),
            b=float(b.counters.get(name, 0.0)),
        )
        for name in counter_names
    ]
    series_a = {name for name in a.series if _matches(name, series_filter)}
    series_b = {name for name in b.series if _matches(name, series_filter)}
    shared_series = sorted(series_a & series_b)
    series = []
    for name in shared_series:
        left, right = a.series[name], b.series[name]
        paired = min(len(left), len(right))
        gaps = [
            abs(float(left[slot]) - float(right[slot])) for slot in range(paired)
        ]
        series.append(
            SeriesDivergence(
                name=name,
                slots_a=len(left),
                slots_b=len(right),
                max_divergence=max(gaps, default=0.0),
                mean_divergence=(sum(gaps) / paired) if paired else 0.0,
            )
        )
    return RecordDiff(
        label_a=a.label,
        label_b=b.label,
        same_spec=a.spec_hash == b.spec_hash,
        counters=counters,
        series=series,
        only_in_a=sorted(series_a - series_b),
        only_in_b=sorted(series_b - series_a),
        max_counter_delta_pct=max_counter_delta_pct,
        max_series_divergence=max_series_divergence,
    )
