"""Self-contained HTML dashboard for a run record.

``render_report`` turns one :class:`~repro.telemetry.record.RunRecord` into
a single HTML file with **no external assets**: styles are an inline
``<style>`` block, charts are inline SVG, and every chart carries a
collapsible data table so the numbers are readable without color vision or
a pointer.

Layout and color follow the repo's charting rules:

* slot series of the same family share one chart — ``site.<name>.requests``
  lines plot together as "requests", one line per site;
* categorical hues are assigned in fixed slot order (never cycled, capped at
  eight lines per chart — beyond that the tail folds into the data table);
* one y axis per chart, 2px lines, recessive hairline grid, axis text in
  muted ink, a legend whenever a chart holds two or more series;
* light and dark palettes are both defined (CSS custom properties switched
  by ``prefers-color-scheme`` and a ``data-theme`` override), dark being its
  own stepped palette rather than an automatic flip.
"""

from __future__ import annotations

import html
import re
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_html_table
from repro.telemetry.record import RunRecord

#: Fixed categorical order (light, dark) — assigned by slot, never cycled.
SERIES_COLORS: Tuple[Tuple[str, str], ...] = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)

_SITE_SERIES = re.compile(r"^site\.(?P<site>.+)\.(?P<family>[^.]+(?:\.[^.]+)*)$")

_CHART_W, _CHART_H = 640, 220
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 56, 16, 12, 28


def _fmt(value: float) -> str:
    """Compact numeric label: integers bare, floats trimmed to 4 significant."""
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def group_series(series: Dict[str, List[float]]) -> "List[Tuple[str, List[Tuple[str, List[float]]]]]":
    """Group series into charts: ``site.<x>.<family>`` lines share a chart.

    Returns ``[(chart_title, [(line_label, values), ...]), ...]`` in sorted
    title order, line labels in sorted order within each chart.
    """
    charts: Dict[str, List[Tuple[str, List[float]]]] = {}
    for name in sorted(series):
        match = _SITE_SERIES.match(name)
        if match:
            charts.setdefault(match.group("family"), []).append(
                (match.group("site"), series[name])
            )
        else:
            charts.setdefault(name, []).append((name, series[name]))
    return sorted(charts.items())


def _ticks(low: float, high: float, count: int = 4) -> List[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / count
    return [low + step * index for index in range(count + 1)]


def _svg_chart(title: str, lines: Sequence[Tuple[str, List[float]]]) -> str:
    """One inline-SVG line chart (values per slot), plus legend and table."""
    lines = list(lines)[: len(SERIES_COLORS)]
    slots = max((len(values) for _, values in lines), default=0)
    flat = [value for _, values in lines for value in values if value is not None]
    vmax = max(flat, default=1.0)
    vmin = min(flat, default=0.0)
    vmin = min(vmin, 0.0)  # anchor the axis at zero for count-like series
    if vmax <= vmin:
        vmax = vmin + 1.0
    plot_w = _CHART_W - _MARGIN_L - _MARGIN_R
    plot_h = _CHART_H - _MARGIN_T - _MARGIN_B

    def x_of(slot: int) -> float:
        if slots <= 1:
            return _MARGIN_L + plot_w / 2
        return _MARGIN_L + plot_w * slot / (slots - 1)

    def y_of(value: float) -> float:
        return _MARGIN_T + plot_h * (1 - (value - vmin) / (vmax - vmin))

    parts = [
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'aria-label="{html.escape(title)} per slot">'
    ]
    for tick in _ticks(vmin, vmax):
        y = y_of(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_CHART_W - _MARGIN_R}" '
            f'y2="{y:.1f}" stroke="var(--gridline)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'class="axis">{_fmt(tick)}</text>'
        )
    baseline_y = y_of(max(vmin, 0.0))
    parts.append(
        f'<line x1="{_MARGIN_L}" y1="{baseline_y:.1f}" '
        f'x2="{_CHART_W - _MARGIN_R}" y2="{baseline_y:.1f}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
    )
    for slot in range(0, slots, max(1, (slots - 1) // 6 or 1)):
        parts.append(
            f'<text x="{x_of(slot):.1f}" y="{_CHART_H - 8}" text-anchor="middle" '
            f'class="axis">{slot}</text>'
        )
    mark_points = slots <= 96
    for index, (label, values) in enumerate(lines):
        color = f"var(--series-{index + 1})"
        points = " ".join(
            f"{x_of(slot):.1f},{y_of(value):.1f}"
            for slot, value in enumerate(values)
            if value is not None
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
        if mark_points:
            for slot, value in enumerate(values):
                if value is None:
                    continue
                parts.append(
                    f'<circle cx="{x_of(slot):.1f}" cy="{y_of(value):.1f}" r="2.5" '
                    f'fill="{color}"><title>{html.escape(label)} · slot {slot}: '
                    f"{_fmt(value)}</title></circle>"
                )
    parts.append("</svg>")
    svg = "".join(parts)

    legend = ""
    if len(lines) >= 2:
        chips = "".join(
            f'<span class="chip"><span class="swatch" '
            f'style="background:var(--series-{index + 1})"></span>'
            f"{html.escape(label)}</span>"
            for index, (label, _) in enumerate(lines)
        )
        legend = f'<div class="legend">{chips}</div>'

    header = "".join(
        f"<th>{html.escape(label)}</th>" for label, _ in lines
    )
    rows = []
    for slot in range(slots):
        cells = "".join(
            f"<td>{_fmt(values[slot]) if slot < len(values) else '-'}</td>"
            for _, values in lines
        )
        rows.append(f"<tr><td>{slot}</td>{cells}</tr>")
    table = (
        "<details><summary>data table</summary>"
        f'<table><thead><tr><th>slot</th>{header}</tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )
    return (
        f'<section class="chart"><h3>{html.escape(title)}</h3>'
        f"{legend}{svg}{table}</section>"
    )


def _counter_table(record: RunRecord) -> str:
    rows = [
        {"counter": name, "value": _fmt(value)}
        for name, value in sorted(record.counters.items())
    ]
    return (
        "<details open><summary>counters</summary>"
        f"{format_html_table(rows)}</details>"
    )


def _phase_table(record: RunRecord) -> str:
    phases = record.trace.get("phases") or []
    if not phases:
        return ""
    return (
        "<details><summary>wall-clock phases (non-canonical)</summary>"
        f"{format_html_table(phases)}</details>"
    )


def _stat_tiles(record: RunRecord) -> str:
    result = record.result
    tiles = [
        ("requests", result.get("requests_total")),
        ("succeeded", result.get("requests_succeeded")),
        ("dropped", result.get("requests_dropped")),
        ("p95 ms", result.get("p95_response_ms")),
        ("scaling actions", result.get("scaling_actions")),
        ("cost USD", result.get("allocation_cost_usd")),
    ]
    body = "".join(
        f'<div class="tile"><div class="tile-value">{_fmt(value)}</div>'
        f'<div class="tile-label">{html.escape(label)}</div></div>'
        for label, value in tiles
        if value is not None
    )
    return f'<div class="tiles">{body}</div>'


_STYLE = """
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --gridline: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --gridline: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --gridline: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9; --series-8: #e66767;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h3 { font-size: 14px; margin: 0 0 8px; color: var(--text-primary); }
.meta { color: var(--text-secondary); font-size: 13px; margin-bottom: 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 96px;
}
.tile-value { font-size: 22px; }
.tile-label { font-size: 12px; color: var(--text-secondary); }
.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 700px;
}
.chart svg { width: 100%; height: auto; display: block; }
.axis { font-size: 10px; fill: var(--muted); font-family: inherit;
        font-variant-numeric: tabular-nums; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 8px;
          font-size: 12px; color: var(--text-secondary); }
.chip { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
details { margin: 8px 0; font-size: 13px; }
summary { cursor: pointer; color: var(--text-secondary); }
table { border-collapse: collapse; margin-top: 8px; font-size: 12px;
        font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 3px 10px 3px 0;
         border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 600; }
"""


def render_report(record: RunRecord) -> str:
    """The full dashboard HTML for one record (self-contained, no assets)."""
    charts = "".join(
        _svg_chart(title, lines)
        for title, lines in group_series(record.series)
    )
    env = record.environment or {}
    meta_bits = [
        f"execution {html.escape(record.execution)}",
        f"seed {record.seed}",
        f"{record.slots} slots",
        f"spec {html.escape(record.spec_hash[:12])}",
    ]
    if env.get("git_describe"):
        meta_bits.append(f"git {html.escape(str(env['git_describe']))}")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(record.scenario)} · run record</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{html.escape(record.scenario)}</h1>\n"
        f'<div class="meta">{" · ".join(meta_bits)}</div>\n'
        f"{_stat_tiles(record)}\n"
        f"{charts}\n"
        f"{_counter_table(record)}\n"
        f"{_phase_table(record)}\n"
        "</body></html>\n"
    )
