"""The telemetry collaborator the simulation stack is instrumented against.

Every instrumented component takes a ``telemetry`` argument defaulting to
:data:`NULL_TELEMETRY` — a null object whose spans and instruments are
shared, stateless no-ops.  The contract this buys:

* **Zero-cost when off.**  The disabled path never allocates, never reads
  the clock, never branches beyond one attribute call per *structural phase*
  (slot boundaries, not per request), so the event macro stays within the
  bench gate's budget with telemetry disabled.
* **Bit-identical results.**  Telemetry only ever *reads* simulation state
  (and the wall clock); it draws from no random stream and schedules no
  event, so a scenario's :class:`~repro.scenarios.runner.ScenarioResult` is
  identical with telemetry on or off — pinned by the parity suite.

Instrumented code never checks ``isinstance``: it calls ``telemetry.span``
/ ``telemetry.counter`` and lets the object decide.  Code that would do
*extra work just to publish* (building rows, concatenating arrays) guards
with ``telemetry.enabled`` first.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.telemetry.registry import DEFAULT_MS_EDGES, MetricsRegistry
from repro.telemetry.timeseries import NULL_RECORDER, SlotSeriesRecorder
from repro.telemetry.tracer import SpanTracer


class _NullSpan:
    """A reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullInstrument:
    """A no-op counter/gauge/histogram, shared across all names."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The disabled collaborator: every operation is a shared no-op."""

    enabled = False
    recorder = NULL_RECORDER

    def span(self, name: str, *, slot: Optional[int] = None) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_MS_EDGES
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def as_dict(self) -> Dict[str, object]:
        return {"enabled": False}


#: The process-wide disabled collaborator (stateless, safe to share).
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """A live collector: one metrics registry plus one span tracer."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        recorder: Optional[SlotSeriesRecorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.recorder = recorder if recorder is not None else SlotSeriesRecorder()

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, *, slot: Optional[int] = None):
        return self.tracer.span(name, slot=slot)

    # -- metrics -------------------------------------------------------------

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_MS_EDGES):
        return self.registry.histogram(name, edges)

    # -- exports -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The full payload the CLI embeds under ``--json``."""
        payload = {
            "enabled": True,
            "metrics": self.registry.as_dict(),
            "trace": self.tracer.as_dict(),
        }
        if len(self.recorder):
            payload["series"] = self.recorder.as_dict()
        return payload

    def summary_lines(self, top: int = 3) -> "list[str]":
        """The human run summary: top phases by cost plus timeline coverage."""
        lines = []
        phases = self.tracer.top_phases(top)
        if phases:
            ranked = ", ".join(
                f"{name} {100.0 * share:.1f}%" for name, share in phases
            )
            lines.append(f"top phases by self time: {ranked}")
            lines.append(
                f"slot-phase timeline covers {100.0 * self.tracer.coverage():.1f}% "
                "of run wall time"
            )
        return lines


def resolve_telemetry(telemetry, spec_enabled: bool):
    """The collaborator a runner should use.

    An explicitly passed object (live or null) always wins; otherwise the
    spec's ``telemetry`` knob decides between a fresh live collector and the
    shared null object.
    """
    if telemetry is not None:
        return telemetry
    return Telemetry() if spec_enabled else NULL_TELEMETRY
