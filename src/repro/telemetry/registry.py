"""Process-local metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the *pull* side of the observability layer: simulation
components publish plain numbers into named instruments and the CLI / JSON
exporters read them back after the run.  Three deliberate constraints keep it
fit for a deterministic simulator:

* **Fixed bucket edges.**  Histograms never rebucket: the edges are part of
  the instrument's identity, chosen at creation time, so two runs with the
  same seed produce bit-identical bucket counts (pinned by the telemetry
  parity suite).  Quantile sketches or auto-ranging buckets would trade that
  determinism for precision the simulator does not need — exact sample
  arrays already exist inside the run; the histogram is the cheap exportable
  summary.
* **Values observed are *simulated* quantities** (response times, queue
  depths, request counts), never wall-clock readings — wall time belongs to
  the tracer (:mod:`repro.telemetry.tracer`), which is allowed to differ
  between runs.
* **No locks, no background thread.**  Scenario runs are single-threaded per
  worker process; campaign workers each build their own registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

#: Default edges for millisecond-valued histograms (response times, span-free
#: simulated durations).  Roughly log-spaced from 1 ms to 1 minute.
DEFAULT_MS_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)

#: Default edges for small-count histograms (queue depths, in-flight counts).
DEFAULT_DEPTH_EDGES: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0,
)


class Counter:
    """A monotonically increasing number (events processed, requests dropped)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (pending events, utilization, cost)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram over simulated values.

    ``edges`` are the *upper* bounds of the finite buckets; one overflow
    bucket catches everything above the last edge, so ``counts`` has
    ``len(edges) + 1`` entries.  The running sum and count make the mean
    recoverable without keeping samples.
    """

    __slots__ = ("name", "edges", "counts", "total", "count")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_MS_EDGES) -> None:
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing, got {edges}"
            )
        self.name = name
        self.edges = ordered
        self.counts = np.zeros(len(ordered) + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one value into its bucket (values above the last edge overflow)."""
        index = int(np.searchsorted(self.edges, value, side="left"))
        self.counts[index] += 1
        self.total += float(value)
        self.count += 1

    def observe_many(self, values: "np.ndarray | Sequence[float]") -> None:
        """Vectorised :meth:`observe` over an array of values."""
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            return
        indices = np.searchsorted(self.edges, array, side="left")
        self.counts += np.bincount(indices, minlength=self.counts.size)
        self.total += float(array.sum())
        self.count += int(array.size)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": [int(count) for count in self.counts],
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """A flat namespace of instruments, created on first use.

    Dotted metric names (``engine.events_processed``,
    ``site.edge.requests_total``) give the namespace its hierarchy; asking
    for an existing name returns the same instrument, and asking for it as a
    different instrument kind is an error — one name, one meaning.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unique(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unique(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_MS_EDGES
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unique(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, edges)
        elif instrument.edges != tuple(float(edge) for edge in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{instrument.edges}, got {tuple(edges)}"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly export of every instrument, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def absorb_payload(self, payload: Dict[str, object]) -> None:
        """Fold another registry's :meth:`as_dict` payload into this one.

        This is the sharded runner's cross-process merge: each worker ships
        its registry as a payload dict and the parent sums them.  Merge
        semantics per instrument kind:

        * **counters** — summed (event counts are additive across shards).
        * **gauges** — summed.  Shard gauges describe each shard's replica
          (pending events, per-replica cost/utilization endpoints), so the
          merged value is a fleet-wide total, not a point-in-time reading of
          one process; documented in the sharded-execution notes.
        * **histograms** — bucket counts, totals and counts summed; the
          bucket edges are part of the instrument's identity and must match
          exactly.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in payload.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(gauge.value + float(value))
        for name, data in payload.get("histograms", {}).items():
            edges = tuple(float(edge) for edge in data["edges"])
            histogram = self.histogram(name, edges)
            if histogram.edges != edges:
                raise ValueError(
                    f"histogram {name!r} edges differ across shards: "
                    f"{histogram.edges} vs {edges}"
                )
            histogram.counts += np.asarray(data["counts"], dtype=np.int64)
            histogram.total += float(data["sum"])
            histogram.count += int(data["count"])

    def rows(self) -> List[Dict[str, object]]:
        """One display row per instrument (the CLI summary-table schema)."""
        rows: List[Dict[str, object]] = []
        for name in sorted(self._counters):
            rows.append(
                {"metric": name, "kind": "counter",
                 "value": round(self._counters[name].value, 3)}
            )
        for name in sorted(self._gauges):
            rows.append(
                {"metric": name, "kind": "gauge",
                 "value": round(self._gauges[name].value, 3)}
            )
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            mean = histogram.mean
            rows.append(
                {
                    "metric": name,
                    "kind": "histogram",
                    "value": f"n={histogram.count} mean={mean:.1f}"
                    if histogram.count
                    else "n=0",
                }
            )
        return rows
