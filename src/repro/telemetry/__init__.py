"""Observability layer: metrics registry, span tracer, null-object facade.

Runners accept a ``telemetry`` collaborator defaulting to
:data:`NULL_TELEMETRY`; pass a :class:`Telemetry` (or set
``ScenarioSpec.telemetry``) to collect metrics and a slot-phase wall-clock
timeline without changing any simulated result.
"""

from repro.telemetry.facade import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve_telemetry,
)
from repro.telemetry.registry import (
    DEFAULT_DEPTH_EDGES,
    DEFAULT_MS_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import SpanRecord, SpanTracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "resolve_telemetry",
    "DEFAULT_DEPTH_EDGES",
    "DEFAULT_MS_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
]
