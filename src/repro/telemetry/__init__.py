"""Observability layer: metrics registry, span tracer, slot-series recorder,
run-record artifacts, null-object facade.

Runners accept a ``telemetry`` collaborator defaulting to
:data:`NULL_TELEMETRY`; pass a :class:`Telemetry` (or set
``ScenarioSpec.telemetry``) to collect metrics, per-control-slot series and
a slot-phase wall-clock timeline without changing any simulated result.
:func:`build_run_record` folds a finished run into a versioned
:class:`RunRecord` artifact; :func:`diff_records` and :func:`render_report`
turn saved records into A/B comparisons and HTML dashboards.
"""

from repro.telemetry.diff import (
    CounterDelta,
    RecordDiff,
    SeriesDivergence,
    diff_records,
)
from repro.telemetry.facade import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve_telemetry,
)
from repro.telemetry.record import (
    RECORD_SCHEMA,
    RunRecord,
    build_run_record,
    load_run_record,
    record_filename,
    spec_hash,
)
from repro.telemetry.registry import (
    DEFAULT_DEPTH_EDGES,
    DEFAULT_MS_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import render_report
from repro.telemetry.timeseries import (
    NULL_RECORDER,
    NullSlotSeriesRecorder,
    SlotSeriesRecorder,
)
from repro.telemetry.tracer import SpanRecord, SpanTracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "resolve_telemetry",
    "NULL_RECORDER",
    "NullSlotSeriesRecorder",
    "SlotSeriesRecorder",
    "RECORD_SCHEMA",
    "RunRecord",
    "build_run_record",
    "load_run_record",
    "record_filename",
    "spec_hash",
    "CounterDelta",
    "RecordDiff",
    "SeriesDivergence",
    "diff_records",
    "render_report",
    "DEFAULT_DEPTH_EDGES",
    "DEFAULT_MS_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
]
