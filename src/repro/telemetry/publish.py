"""Fold simulation-component state into a metrics registry after a run.

The runners call these helpers once, at the ``stats.fold`` boundary, guarded
by ``telemetry.enabled`` — publishing is a read-only pass over state the run
accumulated anyway (engine counters, provisioner billing, broker history),
so the hot loops stay untouched.  Everything published here is a *simulated*
quantity: identical across runs of the same seed, which is what makes the
histogram-determinism test meaningful.

The helpers duck-type their inputs (any object with the named attributes
works) to avoid import cycles into the engine/cloud/multisite layers — and
so hand-built harnesses and tests can publish fakes.

Metric name glossary (also in the README's Observability section):

=============================  =========  =======================================
name                           kind       meaning
=============================  =========  =======================================
engine.events_processed        counter    events the engine executed
engine.events_pending          gauge      live (non-cancelled) events left queued
engine.events_cancelled        counter    events cancelled while pending
scenario.requests_total        counter    requests recorded by the run
scenario.requests_dropped      counter    admission + brokering drops
scenario.requests_succeeded    counter    requests delivered successfully
scenario.response_ms           histogram  successful end-to-end response times
cloud.instances_booted         counter    instances the provisioner ever launched
cloud.instances_running        gauge      instances still running at run end
cloud.cost_usd                 gauge      total allocation cost
control.scaling_actions        counter    autoscaler slot-boundary actions
control.predictions            counter    actions backed by a workload prediction
users.promotions               counter    acceleration-group promotions applied
users.promoted                 gauge      users above their starting group
broker.requests_unrouted       counter    requests no site could accept
broker.requests_spilled        counter    mid-slot cross-site spill diversions
broker.fluid_queue_depth       histogram  per-(boundary, site) fluid backlog
retry.requests_retried         counter    requests that needed >= 1 retry
retry.requests_failed_over     counter    requests re-routed by retry/outage failover
retry.requests_degraded_local  counter    retries exhausted; executed on the device
fault.requests_dropped         counter    retries exhausted with no local fallback
fault.attempts_failed          counter    individual offload attempts that failed
fault.outage_kills             counter    in-flight requests killed at outage onset
fault.snapshots_lost           counter    broker load snapshots lost in delivery
site.<name>.requests_total     counter    requests the site served (per site)
site.<name>.requests_dropped   counter    the site's drops (per site)
site.<name>.requests_spilled_in counter   spill arrivals the site absorbed
site.<name>.routing_share      gauge      the site's share of all routed requests
federation.requests            gauge      federation_rollup: summed requests
federation.dropped             gauge      federation_rollup: summed drops
federation.spilled             gauge      federation_rollup: summed spills
federation.retried             gauge      federation_rollup: summed retries
federation.failed_over         gauge      federation_rollup: summed failovers
federation.degraded_local      gauge      federation_rollup: summed local fallbacks
federation.drop_rate_pct       gauge      federation_rollup: recomputed drop rate
federation.cost_usd            gauge      federation_rollup: summed cost
=============================  =========  =======================================

The per-slot *series* glossary (slot.requests, fleet.instances_running,
site.<name>.routing_share, faults.retried, ...) lives with the recorder in
:mod:`repro.telemetry.timeseries`.

:func:`to_openmetrics` renders a folded registry payload in the OpenMetrics
text exposition format (counters with a ``_total`` sample, histograms as
cumulative ``_bucket{le=...}`` series), so a run record's final registry can
be scraped or loaded by standard Prometheus tooling.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.metrics import federation_rollup
from repro.telemetry.registry import (
    DEFAULT_DEPTH_EDGES,
    DEFAULT_MS_EDGES,
    MetricsRegistry,
)


def publish_engine(registry: MetricsRegistry, engine) -> None:
    """Engine health counters: processed, live pending, cancelled."""
    registry.counter("engine.events_processed").inc(engine.processed_events)
    registry.gauge("engine.events_pending").set(engine.pending_events)
    registry.counter("engine.events_cancelled").inc(engine.cancelled_events)


def publish_requests(
    registry: MetricsRegistry,
    *,
    total: int,
    dropped: int,
    success_response_ms: np.ndarray,
    prefix: str = "scenario",
) -> None:
    """Request totals plus the deterministic response-time histogram."""
    registry.counter(f"{prefix}.requests_total").inc(total)
    registry.counter(f"{prefix}.requests_dropped").inc(dropped)
    registry.counter(f"{prefix}.requests_succeeded").inc(
        int(success_response_ms.size)
    )
    registry.histogram(f"{prefix}.response_ms", DEFAULT_MS_EDGES).observe_many(
        success_response_ms
    )


def publish_serving_stack(
    registry: MetricsRegistry, *, provisioner, autoscaler, prefix: str = ""
) -> None:
    """One serving stack's control-plane tallies (optionally site-prefixed)."""
    dot = f"{prefix}." if prefix else ""
    registry.counter(f"{dot}cloud.instances_booted").inc(provisioner.launched_count)
    registry.gauge(f"{dot}cloud.instances_running").set(provisioner.running_count)
    registry.gauge(f"{dot}cloud.cost_usd").set(
        provisioner.total_cost(include_running=True)
    )
    registry.counter(f"{dot}control.scaling_actions").inc(len(autoscaler.actions))
    registry.counter(f"{dot}control.predictions").inc(
        sum(1 for action in autoscaler.actions if action.decision is not None)
    )


def publish_devices(registry: MetricsRegistry, devices: Iterable) -> None:
    """Promotion tallies over the device fleet."""
    devices = list(devices)
    registry.counter("users.promotions").inc(
        sum(len(device.promotions) for device in devices)
    )
    registry.gauge("users.promoted").set(
        sum(1 for device in devices if device.promotions)
    )


def publish_faults(
    registry: MetricsRegistry,
    *,
    summary,
    outage_kills: int = 0,
    snapshots_lost: int = 0,
) -> None:
    """Fault-plane and resilience tallies for one run.

    ``summary`` duck-types :class:`~repro.faults.overlay.FaultSummary`; the
    outage/snapshot counters come from the multi-site fault plane and stay 0
    for single-site runs.  Published only when a scenario carries a
    ``FaultSpec`` — runs without one emit no ``fault.*``/``retry.*`` signals
    (the CLI rollup still prints zero rows from the result itself).
    """
    registry.counter("retry.requests_retried").inc(summary.requests_retried)
    registry.counter("retry.requests_failed_over").inc(
        summary.requests_failed_over
    )
    registry.counter("retry.requests_degraded_local").inc(summary.requests_local)
    registry.counter("fault.requests_dropped").inc(summary.requests_dropped)
    registry.counter("fault.attempts_failed").inc(summary.failed_attempts)
    registry.counter("fault.outage_kills").inc(outage_kills)
    registry.counter("fault.snapshots_lost").inc(snapshots_lost)


def publish_broker(registry: MetricsRegistry, *, unrouted: int, broker=None) -> None:
    """Broker-level signals: unrouted drops, spills, fluid-queue depths.

    ``broker`` may be any slot broker; the dynamic broker additionally
    carries ``requests_spilled`` and a per-boundary ``load_history`` whose
    in-flight estimates feed the fluid-queue-depth histogram.
    """
    registry.counter("broker.requests_unrouted").inc(unrouted)
    if broker is None:
        return
    spilled = getattr(broker, "requests_spilled", 0)
    registry.counter("broker.requests_spilled").inc(spilled)
    history = getattr(broker, "load_history", None)
    if history:
        depth = registry.histogram(
            "broker.fluid_queue_depth", DEFAULT_DEPTH_EDGES
        )
        for states in history:
            depth.observe_many(
                [state.in_flight_requests for state in states]
            )


def publish_federation(registry: MetricsRegistry, site_results: Sequence) -> None:
    """Per-site signals plus the :func:`federation_rollup` aggregation.

    ``site_results`` are the run's :class:`~repro.scenarios.runner.SiteResult`
    rows (one per federation site, empty sites included) — the same rows the
    rollup contract requires, so the registry's federation gauges are the
    rollup's numbers by construction.
    """
    routed_total = sum(site.requests_total for site in site_results)
    for site in site_results:
        prefix = f"site.{site.name}"
        registry.counter(f"{prefix}.requests_total").inc(site.requests_total)
        registry.counter(f"{prefix}.requests_dropped").inc(site.requests_dropped)
        registry.counter(f"{prefix}.requests_spilled_in").inc(
            site.requests_spilled_in
        )
        registry.gauge(f"{prefix}.routing_share").set(
            site.requests_total / routed_total if routed_total else 0.0
        )
        registry.gauge(f"{prefix}.mean_utilization").set(site.mean_utilization)
    rollup = federation_rollup(site_results)
    registry.gauge("federation.sites").set(rollup["sites"])
    registry.gauge("federation.requests").set(rollup["requests"])
    registry.gauge("federation.dropped").set(rollup["dropped"])
    registry.gauge("federation.spilled").set(rollup["spilled"])
    registry.gauge("federation.retried").set(rollup["retried"])
    registry.gauge("federation.failed_over").set(rollup["failed_over"])
    registry.gauge("federation.degraded_local").set(rollup["degraded_local"])
    registry.gauge("federation.drop_rate_pct").set(rollup["drop_rate_pct"])
    registry.gauge("federation.cost_usd").set(rollup["cost_usd"])


def _om_name(name: str) -> str:
    """An OpenMetrics-legal metric name: dots and other punctuation fold to _."""
    cleaned = "".join(
        char if char.isalnum() or char == "_" else "_" for char in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _om_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_openmetrics(metrics) -> str:
    """Render a folded registry payload as OpenMetrics exposition text.

    ``metrics`` is the ``{"counters", "gauges", "histograms"}`` mapping from
    :meth:`MetricsRegistry.as_dict` — or the identical fields of a run
    record.  Counters gain the mandated ``_total`` suffix; histograms emit
    cumulative ``le`` buckets (the registry stores per-bucket counts with one
    overflow bucket past the last edge).  Output terminates with ``# EOF``
    per the spec.
    """
    lines = []
    for name, value in sorted(metrics.get("counters", {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_om_value(value)}")
    for name, value in sorted(metrics.get("gauges", {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_om_value(value)}")
    for name, payload in sorted(metrics.get("histograms", {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0.0
        for edge, bucket in zip(payload["edges"], payload["counts"]):
            cumulative += bucket
            lines.append(
                f'{om}_bucket{{le="{_om_value(float(edge))}"}} '
                f"{_om_value(cumulative)}"
            )
        lines.append(f'{om}_bucket{{le="+Inf"}} {_om_value(payload["count"])}')
        lines.append(f"{om}_count {_om_value(payload['count'])}")
        lines.append(f"{om}_sum {_om_value(payload['sum'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
