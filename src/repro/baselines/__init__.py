"""Baselines the paper contrasts against (and the ablation benches use).

* **Round-robin routing** (:class:`repro.sdn.accelerator.RoundRobinRouting`) —
  "our work is not ruled by a fixed and simple load balancing algorithm, e.g.,
  round-robin" (Section VII-3): requests are spread over groups regardless of
  the user's requested acceleration level.
* **Static provisioning** (:func:`build_static_backend`) — the "static and not
  dynamic" system of Section VI-B3: a fixed instance mix provisioned once and
  never adjusted.
* **Over-provisioning** (:class:`repro.core.allocation.OverProvisioningAllocator`)
  — size every group for a multiple of its demand instead of following the
  prediction.
* **Greedy allocation** (:class:`repro.core.allocation.GreedyAllocator`) — a
  cost-per-capacity heuristic instead of the exact ILP.
* **Reactive autoscaling** (:class:`repro.sdn.autoscaler.ReactiveAutoscaler`) —
  provision for the workload just observed, without prediction.
* **Naive predictors** (:class:`repro.core.prediction.LastValuePredictor`,
  :class:`repro.core.prediction.MeanWorkloadPredictor`) — last-value and
  mean-history forecasting instead of the edit-distance nearest-slot search.
"""

from typing import Mapping

from repro.cloud.backend import BackendPool
from repro.cloud.catalog import InstanceCatalog
from repro.cloud.provisioner import Provisioner
from repro.core.allocation import GreedyAllocator, OverProvisioningAllocator
from repro.core.prediction import LastValuePredictor, MeanWorkloadPredictor
from repro.sdn.accelerator import RoundRobinRouting
from repro.sdn.autoscaler import ReactiveAutoscaler

__all__ = [
    "GreedyAllocator",
    "LastValuePredictor",
    "MeanWorkloadPredictor",
    "OverProvisioningAllocator",
    "ReactiveAutoscaler",
    "RoundRobinRouting",
    "build_static_backend",
]


def build_static_backend(
    provisioner: Provisioner,
    backend: BackendPool,
    counts_by_group: Mapping[int, Mapping[str, int]],
) -> BackendPool:
    """Provision a fixed instance mix once (the no-adjustment baseline).

    ``counts_by_group`` maps an acceleration group to the instance-type counts
    to launch for it, e.g. ``{1: {"t2.nano": 2}, 2: {"t2.large": 1}}``.  The
    instances are launched immediately and never touched again.
    """
    for group, type_counts in counts_by_group.items():
        for type_name, count in type_counts.items():
            if count < 0:
                raise ValueError(f"negative instance count for {type_name!r}: {count}")
            for _ in range(count):
                backend.add_instance(provisioner.launch(type_name), group)
    return backend
