"""Plain-text and CSV reporting of experiment results.

The experiment runners return lists of row dictionaries (one per plotted point
or headline number).  These helpers render those rows as aligned text tables
for the CLI / benchmark output and export them as CSV files so the figures can
be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence


def _collect_columns(rows: Sequence[Mapping[str, object]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def format_table(rows: Sequence[Mapping[str, object]], *, missing: str = "-") -> str:
    """Render rows as an aligned plain-text table.

    Rows may have heterogeneous keys (the experiment runners append headline
    rows after the per-point rows); missing cells render as ``missing``.
    """
    if not rows:
        return "(no rows)"
    columns = _collect_columns(rows)
    cells = [[str(row.get(column, missing)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[index]) for row in cells))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(value.ljust(width) for value, width in zip(row, widths)) for row in cells
    )
    return "\n".join([header, separator, body])


def format_html_table(rows: Sequence[Mapping[str, object]], *, missing: str = "-") -> str:
    """Render rows as an HTML ``<table>`` (same column rules as the text table).

    Cell text is escaped; styling is left to the embedding page (the run-record
    dashboard wraps these in its own style scope).
    """
    from html import escape

    if not rows:
        return "<table></table>"
    columns = _collect_columns(rows)
    header = "".join(f"<th>{escape(str(column))}</th>" for column in columns)
    body = "".join(
        "<tr>"
        + "".join(
            f"<td>{escape(str(row.get(column, missing)))}</td>" for column in columns
        )
        + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{header}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )


def write_csv(rows: Sequence[Mapping[str, object]], path: "str | Path") -> Path:
    """Write rows to ``path`` as CSV; returns the path.

    The column set is the union of keys across rows, in first-seen order.
    """
    path = Path(path)
    columns = _collect_columns(rows)
    if not columns:
        raise ValueError("cannot write a CSV with no rows")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return path


def read_csv(path: "str | Path") -> List[Dict[str, str]]:
    """Read back a CSV written by :func:`write_csv` (all values as strings)."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def summarize_comparison(
    paper: Mapping[str, float], measured: Mapping[str, float]
) -> List[Dict[str, object]]:
    """Build paper-vs-measured rows with the relative deviation per metric."""
    rows: List[Dict[str, object]] = []
    for metric in paper:
        reference = float(paper[metric])
        value = float(measured[metric]) if metric in measured else float("nan")
        if reference != 0 and value == value:  # not NaN
            deviation = 100.0 * (value - reference) / reference
        else:
            deviation = float("nan")
        rows.append(
            {
                "metric": metric,
                "paper": reference,
                "measured": value,
                "deviation_pct": round(deviation, 1) if deviation == deviation else "n/a",
            }
        )
    return rows
