"""Cross-validation of the workload predictor (Fig. 10a).

The paper determines the accuracy of the prediction model with a 10-fold
cross-validation over history traces produced by a 16-hour workload, and
reports ≈87.5 % accuracy once enough history is available, with a clear
bootstrap phase at small history sizes.

The harness here treats each time slot as one example: the slot is predicted
from the remaining history (with itself excluded from matching) and scored
with :func:`repro.core.prediction.prediction_accuracy` (1 − normalised edit
distance against the realised slot).  Folds partition the slots; the reported
accuracy of a fold is the mean accuracy of its held-out slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.prediction import WorkloadPredictor, prediction_accuracy
from repro.core.timeslots import TimeSlot, TimeSlotHistory


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate accuracy of the predictor."""

    fold_accuracies: List[float]
    per_slot_accuracies: Dict[int, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        if not self.fold_accuracies:
            raise ValueError("no folds evaluated")
        return float(np.mean(self.fold_accuracies))

    @property
    def std_accuracy(self) -> float:
        if not self.fold_accuracies:
            raise ValueError("no folds evaluated")
        return float(np.std(self.fold_accuracies))

    @property
    def mean_accuracy_pct(self) -> float:
        """Mean accuracy as a percentage (the paper's 87.5 % figure)."""
        return 100.0 * self.mean_accuracy


def _predict_slot(
    history: TimeSlotHistory, index: int, *, strategy: str, window: Optional[int] = None
) -> float:
    """Accuracy of predicting slot ``index`` from the preceding history.

    The slot at ``index`` is predicted from the slot at ``index - 1`` (the
    "current" slot) using only slots strictly *before the current one* as the
    knowledge base — exactly the situation the deployed system faces at the
    end of each period: the just-finished slot is the query, the older history
    is what it is matched against.  ``window`` optionally restricts the
    knowledge base to the most recent ``window`` slots.
    """
    end = index - 1
    start = 0 if window is None else max(0, end - window)
    knowledge = TimeSlotHistory(
        history.slots[start:end], slot_length_ms=history.slot_length_ms
    )
    if len(knowledge) == 0:
        knowledge = TimeSlotHistory(
            history.slots[:index], slot_length_ms=history.slot_length_ms
        )
    predictor = WorkloadPredictor(knowledge, strategy=strategy, min_history=1)
    current = history[index - 1]
    outcome = predictor.predict(current)
    return prediction_accuracy(outcome.predicted_slot, history[index])


def cross_validate_predictor(
    history: TimeSlotHistory,
    *,
    folds: int = 10,
    strategy: str = "nearest",
    rng: Optional[np.random.Generator] = None,
    min_index: int = 2,
) -> CrossValidationResult:
    """k-fold cross-validation of the predictor over a slot history.

    Slots (from ``min_index`` on, so a minimal bootstrap history always
    exists) are shuffled and partitioned into ``folds`` folds; each held-out
    slot is predicted from the history that precedes it and scored against
    the realised workload.
    """
    if folds < 2:
        raise ValueError(f"folds must be >= 2, got {folds}")
    if len(history) <= min_index + 1:
        raise ValueError(
            f"history of {len(history)} slots is too short for cross-validation"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    candidate_indices = np.arange(min_index, len(history))
    rng.shuffle(candidate_indices)
    fold_assignments = np.array_split(candidate_indices, folds)

    fold_accuracies: List[float] = []
    per_slot: Dict[int, float] = {}
    for fold in fold_assignments:
        if len(fold) == 0:
            continue
        accuracies = []
        for index in fold:
            accuracy = _predict_slot(history, int(index), strategy=strategy)
            accuracies.append(accuracy)
            per_slot[int(index)] = accuracy
        fold_accuracies.append(float(np.mean(accuracies)))
    return CrossValidationResult(fold_accuracies=fold_accuracies, per_slot_accuracies=per_slot)


def accuracy_vs_history_size(
    history: TimeSlotHistory,
    *,
    sizes: Sequence[int] = tuple(range(2, 21, 2)),
    strategy: str = "nearest",
) -> Dict[int, float]:
    """Accuracy as a function of the amount of history available (Fig. 10a).

    For each requested ``size`` the predictor's knowledge base is restricted
    to the ``size`` slots preceding the current one (a sliding window) and the
    predictor is evaluated walk-forward on every slot it can predict; the mean
    accuracy is reported.  Sizes larger than the history are skipped.
    """
    results: Dict[int, float] = {}
    for size in sizes:
        if size < 2 or size >= len(history):
            continue
        accuracies: List[float] = []
        for index in range(size + 1, len(history)):
            accuracies.append(
                _predict_slot(history, index, strategy=strategy, window=size)
            )
        if accuracies:
            results[size] = float(np.mean(accuracies))
    return results
