"""Analysis utilities.

* :mod:`repro.analysis.characterization` — the simulated counterpart of the
  paper's instance benchmarking (Section VI-A): stress each instance type
  with 1–100 concurrent users, collect response-time distributions, derive
  capacities and acceleration-level groupings.
* :mod:`repro.analysis.crossval` — k-fold cross-validation of the workload
  predictor and the accuracy-vs-history-size curve of Fig. 10a.
* :mod:`repro.analysis.metrics` — summary metrics shared by the experiments
  (response-time summaries, success rates, speed-up ratios).
"""

from repro.analysis.characterization import (
    BenchmarkResult,
    benchmark_catalog,
    benchmark_instance_type,
    measured_capacities,
)
from repro.analysis.crossval import (
    CrossValidationResult,
    accuracy_vs_history_size,
    cross_validate_predictor,
)
from repro.analysis.metrics import (
    acceleration_ratio,
    response_time_summary,
    success_failure_split,
)
from repro.analysis.reporting import format_table, read_csv, summarize_comparison, write_csv

__all__ = [
    "BenchmarkResult",
    "CrossValidationResult",
    "acceleration_ratio",
    "accuracy_vs_history_size",
    "benchmark_catalog",
    "benchmark_instance_type",
    "cross_validate_predictor",
    "format_table",
    "measured_capacities",
    "read_csv",
    "response_time_summary",
    "success_failure_split",
    "summarize_comparison",
    "write_csv",
]
