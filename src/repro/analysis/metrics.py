"""Shared summary metrics for the evaluation experiments."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.simulation.stats import percentile_summary


def response_time_summary(response_times_ms: Sequence[float]) -> Dict[str, float]:
    """Mean/std/percentile summary of a set of response times."""
    return percentile_summary(response_times_ms)


def success_failure_split(successes: int, failures: int) -> Dict[str, float]:
    """Success and failure percentages (the Fig. 8c bars)."""
    if successes < 0 or failures < 0:
        raise ValueError("counts must be non-negative")
    total = successes + failures
    if total == 0:
        raise ValueError("no requests to split")
    return {
        "success_pct": 100.0 * successes / total,
        "fail_pct": 100.0 * failures / total,
        "total": float(total),
    }


def acceleration_ratio(
    slower_response_ms: "float | Sequence[float]",
    faster_response_ms: "float | Sequence[float]",
) -> float:
    """How many times faster the second measurement is than the first.

    Sequences are reduced to their means first.  This is the statistic the
    paper reports in Fig. 5 (e.g. "a task is executed ≈1.25 times faster by a
    server of level 2 when compared with one of level 1").
    """
    slower = float(np.mean(slower_response_ms))
    faster = float(np.mean(faster_response_ms))
    if slower <= 0 or faster <= 0:
        raise ValueError("response times must be positive")
    return slower / faster


def mean_by_key(values_by_key: Mapping[int, Sequence[float]]) -> Dict[int, float]:
    """Mean of each entry of a key -> samples mapping (empty entries skipped)."""
    return {
        key: float(np.mean(values))
        for key, values in values_by_key.items()
        if len(values) > 0
    }


def std_by_key(values_by_key: Mapping[int, Sequence[float]]) -> Dict[int, float]:
    """Standard deviation of each entry of a key -> samples mapping."""
    return {
        key: float(np.std(values))
        for key, values in values_by_key.items()
        if len(values) > 0
    }


def federation_rollup(sites: Sequence[object]) -> Dict[str, float]:
    """Aggregate per-site results into one federation-wide summary.

    Accepts any objects exposing the
    :class:`~repro.scenarios.runner.SiteResult` fields (``requests_total``,
    ``requests_dropped``, ``mean_response_ms``, ``allocation_cost_usd``,
    optionally ``requests_spilled_in``) — exact values, not the rounded
    display rows, so single drops among many requests are never lost to
    rounding.  Request counts, spill counts and costs add up, the drop rate
    is recomputed from the summed counts, and the mean response time is
    weighted by each site's served (non-dropped) request count so empty
    sites do not skew it.

    Callers must pass one row per federation site, *including* sites that
    served zero requests (the multi-site runner always emits one row per
    site; hand-assembled row lists can use :meth:`SiteResult.zero`): the
    rollup's ``sites`` count is its contract with
    ``BrokeredPlan.indices_for_site`` — summing ``indices_for_site`` over
    ``range(int(rollup["sites"]))`` plus the unrouted remainder always
    reaches every request, which silently breaks if empty sites are
    dropped before the rollup.
    """
    if not sites:
        raise ValueError("need at least one site result")
    requests = float(sum(site.requests_total for site in sites))
    dropped = float(sum(site.requests_dropped for site in sites))
    cost = float(sum(site.allocation_cost_usd for site in sites))
    spilled = float(
        sum(getattr(site, "requests_spilled_in", 0) for site in sites)
    )
    retried = float(sum(getattr(site, "requests_retried", 0) for site in sites))
    failed_over = float(
        sum(getattr(site, "requests_failed_over", 0) for site in sites)
    )
    degraded_local = float(
        sum(getattr(site, "requests_degraded_local", 0) for site in sites)
    )
    weighted_mean = 0.0
    served_total = 0.0
    for site in sites:
        served = site.requests_total - site.requests_dropped
        mean_ms = site.mean_response_ms
        if served > 0 and mean_ms == mean_ms:  # skip NaN (no successes)
            weighted_mean += served * float(mean_ms)
            served_total += served
    return {
        "sites": float(len(sites)),
        "requests": requests,
        "dropped": dropped,
        "spilled": spilled,
        "retried": retried,
        "failed_over": failed_over,
        "degraded_local": degraded_local,
        "drop_rate_pct": 100.0 * dropped / requests if requests else 0.0,
        "mean_ms": weighted_mean / served_total if served_total else float("nan"),
        "cost_usd": cost,
    }


def group_rollup_rows(sites: Sequence[object]) -> "list[Dict[str, object]]":
    """Per-(site, group) request/drop rows plus federation-wide group totals.

    Accepts any objects exposing ``name`` and a ``groups`` sequence of
    :class:`~repro.scenarios.runner.SiteGroupResult`-shaped entries
    (``group``, ``requests_total``, ``requests_dropped``).  One row per
    site and requesting acceleration group, in (site, group) order,
    followed by one ``site="*"`` summary row per group — the cohort-level
    view that shows a broker starving one promotion level even when the
    fleet-wide drop rate looks healthy.  Sites without per-group data
    (single-group legacy results) contribute no rows.
    """
    rows: "list[Dict[str, object]]" = []
    totals: Dict[int, "list[int]"] = {}
    for site in sites:
        for entry in getattr(site, "groups", ()) or ():
            rows.append(
                {
                    "site": site.name,
                    "group": entry.group,
                    "requests": entry.requests_total,
                    "dropped": entry.requests_dropped,
                    "drop_rate_pct": (
                        round(100.0 * entry.requests_dropped / entry.requests_total, 2)
                        if entry.requests_total
                        else 0.0
                    ),
                }
            )
            bucket = totals.setdefault(entry.group, [0, 0])
            bucket[0] += entry.requests_total
            bucket[1] += entry.requests_dropped
    for group in sorted(totals):
        requests, dropped = totals[group]
        rows.append(
            {
                "site": "*",
                "group": group,
                "requests": requests,
                "dropped": dropped,
                "drop_rate_pct": (
                    round(100.0 * dropped / requests, 2) if requests else 0.0
                ),
            }
        )
    return rows


def routing_share_rows(
    slot_site_requests: Sequence[Sequence[int]], site_names: Sequence[str]
) -> "list[Dict[str, object]]":
    """Per-slot routing shares as display rows (one row per control slot).

    ``slot_site_requests`` is the per-slot, per-site request-count matrix a
    multi-site :class:`~repro.scenarios.runner.ScenarioResult` records
    (``slot_site_requests``); each output row carries the slot index, the
    slot's routed total and one ``share_<site>`` column per site.  Slots
    that routed nothing report zero shares rather than NaN so tables and
    CSVs stay clean.
    """
    rows: "list[Dict[str, object]]" = []
    for index, counts in enumerate(slot_site_requests):
        counts = list(counts)
        if len(counts) != len(site_names):
            raise ValueError(
                f"slot {index} has {len(counts)} site counts for "
                f"{len(site_names)} sites"
            )
        total = sum(counts)
        row: Dict[str, object] = {"slot": index, "requests": total}
        for name, count in zip(site_names, counts):
            row[f"share_{name}"] = round(count / total, 4) if total else 0.0
        rows.append(row)
    return rows
