"""Instance benchmarking and acceleration-level characterization (Section VI-A).

The paper stresses each instance type with a heavy concurrent load (1 to 100
users in steps of 10, random tasks from the pool, three hours per server) and
observes how the response time degrades; the degradation pattern classifies
the servers into acceleration groups (Fig. 4), with the t2.nano/t2.micro
anomaly of Fig. 6 and the static-load acceleration ratios of Fig. 5.

This module reproduces that benchmark on top of the calibrated performance
profiles: for every concurrency level it draws many jittered response-time
samples from the instance's profile and summarises them, which is what the
real benchmark's repeated rounds amount to statistically.  The measured
capacities and speed factors then feed
:func:`repro.core.acceleration.characterize_instances`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cloud.catalog import InstanceCatalog, InstanceType
from repro.mobile.tasks import TaskPool, DEFAULT_TASK_POOL
from repro.simulation.stats import percentile_summary

#: The concurrency sweep used throughout Section VI-A (Fig. 4, 5, 7c).
DEFAULT_CONCURRENCY_SWEEP: tuple = (1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass
class BenchmarkResult:
    """The benchmark of one instance type: response-time stats per concurrency."""

    instance_type: str
    concurrencies: List[int]
    summaries: List[Dict[str, float]]
    samples: Dict[int, np.ndarray] = field(default_factory=dict)

    def mean_response_ms(self) -> Dict[int, float]:
        """Concurrency -> mean response time (the Fig. 4 mean line)."""
        return {
            concurrency: summary["mean"]
            for concurrency, summary in zip(self.concurrencies, self.summaries)
        }

    def std_response_ms(self) -> Dict[int, float]:
        """Concurrency -> response-time standard deviation (Fig. 6 / Fig. 7c)."""
        return {
            concurrency: summary["std"]
            for concurrency, summary in zip(self.concurrencies, self.summaries)
        }

    def capacity_under_threshold(self, threshold_ms: float) -> float:
        """Largest concurrency whose mean response time stays under the threshold.

        The benchmark samples a coarse concurrency sweep (1, 10, 20, ...), so
        the crossing point is located by linear interpolation between the two
        sweep points that straddle the threshold; this gives the fractional
        capacity the Section IV-C1 sorting needs to separate types whose
        curves cross the threshold between the same two sweep points.
        Returns 0.0 when even the lowest benchmarked concurrency misses the
        threshold, and the largest benchmarked concurrency when the curve
        never crosses it.
        """
        if threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be positive, got {threshold_ms}")
        means = [summary["mean"] for summary in self.summaries]
        if means[0] > threshold_ms:
            return 0.0
        for index in range(1, len(means)):
            if means[index] > threshold_ms:
                lower_c, upper_c = self.concurrencies[index - 1], self.concurrencies[index]
                lower_m, upper_m = means[index - 1], means[index]
                if upper_m == lower_m:
                    return float(lower_c)
                fraction = (threshold_ms - lower_m) / (upper_m - lower_m)
                return float(lower_c + fraction * (upper_c - lower_c))
        return float(self.concurrencies[-1])

    def degradation_slope(self) -> float:
        """Mean response-time increase per added concurrent user (linear fit).

        The paper observes that "the slope of the mean response time becomes
        less steep as we use more powerful instances"; this is that slope.
        """
        x = np.asarray(self.concurrencies, dtype=float)
        y = np.asarray([summary["mean"] for summary in self.summaries], dtype=float)
        slope, _intercept = np.polyfit(x, y, 1)
        return float(slope)


def sample_workload_matrix(
    rng: np.random.Generator,
    *,
    task_pool: Optional[TaskPool] = None,
    fixed_task: Optional[str] = None,
    concurrencies: Sequence[int] = DEFAULT_CONCURRENCY_SWEEP,
    samples_per_level: int = 200,
) -> Dict[int, np.ndarray]:
    """Pre-draw the per-request work for a benchmark sweep.

    Using the *same* request mix for every instance type (common random
    numbers) is how a fair benchmark compares servers: differences between
    the resulting curves then reflect only the servers, not sampling noise in
    the task mix.
    """
    if samples_per_level < 1:
        raise ValueError(f"samples_per_level must be >= 1, got {samples_per_level}")
    pool = task_pool if task_pool is not None else DEFAULT_TASK_POOL
    matrix: Dict[int, np.ndarray] = {}
    for concurrency in concurrencies:
        if concurrency < 1:
            raise ValueError("all concurrencies must be >= 1")
        work = np.empty(samples_per_level, dtype=float)
        for index in range(samples_per_level):
            task = pool.get(fixed_task) if fixed_task is not None else pool.sample(rng)
            work[index] = task.sample_work_units(rng)
        matrix[int(concurrency)] = work
    return matrix


def benchmark_instance_type(
    instance_type: InstanceType,
    *,
    rng: np.random.Generator,
    task_pool: Optional[TaskPool] = None,
    fixed_task: Optional[str] = None,
    concurrencies: Sequence[int] = DEFAULT_CONCURRENCY_SWEEP,
    samples_per_level: int = 200,
    keep_samples: bool = False,
    work_samples: Optional[Dict[int, np.ndarray]] = None,
) -> BenchmarkResult:
    """Benchmark one instance type over a concurrency sweep.

    Parameters
    ----------
    fixed_task:
        When given (e.g. ``"minimax"``), every request runs that task with its
        static input — the Fig. 5 setup.  Otherwise each request draws a
        random task from the pool — the Fig. 4 setup.
    samples_per_level:
        Number of response-time samples per concurrency level; the paper's
        3-hour runs collect on the order of hundreds of completions per level.
    work_samples:
        Optional pre-drawn request mix (see :func:`sample_workload_matrix`);
        when given, every instance type sees exactly this mix.
    """
    if samples_per_level < 1:
        raise ValueError(f"samples_per_level must be >= 1, got {samples_per_level}")
    pool = task_pool if task_pool is not None else DEFAULT_TASK_POOL
    profile = instance_type.profile
    concurrencies = [int(c) for c in concurrencies]
    if any(c < 1 for c in concurrencies):
        raise ValueError("all concurrencies must be >= 1")

    summaries: List[Dict[str, float]] = []
    samples_by_level: Dict[int, np.ndarray] = {}
    for concurrency in concurrencies:
        samples = np.empty(samples_per_level, dtype=float)
        for index in range(samples_per_level):
            if work_samples is not None and concurrency in work_samples:
                work = float(work_samples[concurrency][index % len(work_samples[concurrency])])
            else:
                task = pool.get(fixed_task) if fixed_task is not None else pool.sample(rng)
                work = task.sample_work_units(rng)
            samples[index] = profile.sample_service_time_ms(work, concurrency, rng)
        summaries.append(percentile_summary(samples))
        if keep_samples:
            samples_by_level[concurrency] = samples
    return BenchmarkResult(
        instance_type=instance_type.name,
        concurrencies=list(concurrencies),
        summaries=summaries,
        samples=samples_by_level,
    )


def benchmark_catalog(
    catalog: InstanceCatalog,
    *,
    rng: np.random.Generator,
    task_pool: Optional[TaskPool] = None,
    fixed_task: Optional[str] = None,
    concurrencies: Sequence[int] = DEFAULT_CONCURRENCY_SWEEP,
    samples_per_level: int = 200,
    type_names: Optional[Sequence[str]] = None,
    common_random_numbers: bool = True,
) -> Dict[str, BenchmarkResult]:
    """Benchmark every (or a subset of) instance type in the catalog.

    With ``common_random_numbers`` (the default) every type is stressed with
    exactly the same request mix, so the curves are directly comparable.
    """
    work_samples = None
    if common_random_numbers:
        work_samples = sample_workload_matrix(
            rng,
            task_pool=task_pool,
            fixed_task=fixed_task,
            concurrencies=concurrencies,
            samples_per_level=samples_per_level,
        )
    results: Dict[str, BenchmarkResult] = {}
    for instance_type in catalog:
        if type_names is not None and instance_type.name not in type_names:
            continue
        results[instance_type.name] = benchmark_instance_type(
            instance_type,
            rng=rng,
            task_pool=task_pool,
            fixed_task=fixed_task,
            concurrencies=concurrencies,
            samples_per_level=samples_per_level,
            work_samples=work_samples,
        )
    return results


def measured_capacities(
    results: Mapping[str, BenchmarkResult], response_threshold_ms: float
) -> Dict[str, float]:
    """Per-type measured capacity (users under the threshold) from a benchmark.

    This is the empirical ``K_s`` input of the allocation model and the
    sorting key of the Section IV-C1 grouping procedure.
    """
    return {
        name: float(result.capacity_under_threshold(response_threshold_ms))
        for name, result in results.items()
    }


def measured_speed_factors(
    results: Mapping[str, BenchmarkResult],
    *,
    reference_type: Optional[str] = None,
) -> Dict[str, float]:
    """Single-request speed of each type relative to a reference type.

    The speed is estimated from the mean response time at concurrency 1; the
    reference (default: the slowest type) gets speed 1.0.
    """
    single_user_means: Dict[str, float] = {}
    for name, result in results.items():
        means = result.mean_response_ms()
        if 1 not in means:
            raise ValueError(f"benchmark of {name!r} has no concurrency-1 measurement")
        single_user_means[name] = means[1]
    if reference_type is None:
        reference_type = max(single_user_means, key=lambda name: single_user_means[name])
    reference = single_user_means[reference_type]
    return {name: reference / mean for name, mean in single_user_means.items()}
