"""Command-line interface.

``repro-accel`` regenerates any of the paper's evaluation figures from the
command line and prints the resulting rows as a plain table, e.g.::

    repro-accel fig5                 # acceleration ratios (Fig. 5)
    repro-accel fig10a --seed 3      # prediction accuracy (Fig. 10a)
    repro-accel dynamic --hours 2    # the Fig. 9/10 system experiment
    repro-accel export --output-dir results/   # CSVs for every fast figure

Beyond the paper's figures, the scenario engine runs declarative workloads::

    repro-accel scenario list                  # the built-in scenario registry
    repro-accel scenario run flash-crowd       # one scenario end to end
    repro-accel scenario run edge-vs-core      # multi-site: adds a per-site table
    repro-accel scenario campaign --workers 4  # all scenarios, in parallel
    repro-accel scenario campaign --execution batched   # whole campaign, fast path

Every experiment accepts ``--seed`` so runs are reproducible.  Unknown
commands exit with a nonzero status.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Sequence

from repro import __version__
from repro.analysis.metrics import group_rollup_rows, routing_share_rows
from repro.analysis.reporting import format_table, write_csv
from repro.experiments import (
    build_reproduction_summary,
    run_dynamic_acceleration,
    run_fig4_characterization,
    run_fig5_acceleration_ratios,
    run_fig6_nano_micro_anomaly,
    run_fig7_decomposition,
    run_fig8_saturation,
    run_fig8a_sdn_overhead,
    run_fig10a_prediction_accuracy,
    run_fig11_network_latency,
)
from repro.perf import (
    DEFAULT_REGRESSION_THRESHOLD,
    BenchReport,
    compare_reports,
    run_benchmarks,
)
from repro.multisite.spec import BROKER_POLICIES
from repro.scenarios import (
    CampaignRunner,
    ShardSpec,
    builtin_specs,
    get_scenario,
    run_scenario,
    run_sharded_scenario,
)
from repro.telemetry import (
    Telemetry,
    build_run_record,
    diff_records,
    load_run_record,
    record_filename,
    render_report,
)
from repro.telemetry.publish import to_openmetrics

#: Progress / bookkeeping messages ("wrote <path>", "peak RSS ...") go through
#: this logger onto stderr, gated by ``--verbose``/``--quiet`` — result tables
#: and JSON payloads stay on stdout, so piping output never mixes the two.
log = logging.getLogger("repro")


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """(Re)bind the CLI logger to the *current* stderr at the chosen level.

    A fresh handler per invocation keeps ``main()`` re-entrant: embedding
    callers (and pytest's capsys) may swap ``sys.stderr`` between calls, and
    a cached handler would keep writing to the old stream.
    """
    for handler in list(log.handlers):
        log.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    log.addHandler(handler)
    log.propagate = False
    if quiet:
        log.setLevel(logging.WARNING)
    elif verbose:
        log.setLevel(logging.DEBUG)
    else:
        log.setLevel(logging.INFO)


def _invalid_broker(broker: "str | None") -> bool:
    """Report (on stderr) whether ``broker`` names an unknown policy."""
    if broker is None or broker in BROKER_POLICIES:
        return False
    print(
        f"error: unknown broker policy {broker!r}; choose from "
        f"{', '.join(BROKER_POLICIES)}",
        file=sys.stderr,
    )
    return True


def _jsonify(value: object) -> object:
    """Make a result payload strict-JSON safe: NaN/inf metrics become null.

    ``json.dumps`` would otherwise emit the non-standard ``NaN`` token for
    metrics like a no-success site's mean response time, which strict
    parsers (jq, JavaScript ``JSON.parse``) reject.
    """
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return None
    return value


def _print_rows(rows: Iterable[Dict[str, object]]) -> None:
    """Print a list of dict rows as aligned ``key=value`` lines."""
    for row in rows:
        line = "  ".join(f"{key}={value}" for key, value in row.items())
        print(line)


def _cmd_fig4(args: argparse.Namespace) -> int:
    result = run_fig4_characterization(seed=args.seed, samples_per_level=args.samples)
    _print_rows(result.rows())
    print("acceleration level map:", result.level_map())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    result = run_fig5_acceleration_ratios(seed=args.seed, samples_per_level=args.samples)
    _print_rows(result.rows())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    result = run_fig6_nano_micro_anomaly(seed=args.seed, samples_per_level=args.samples)
    _print_rows(result.rows())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    result = run_fig7_decomposition(seed=args.seed)
    _print_rows(result.rows())
    return 0


def _cmd_fig8a(args: argparse.Namespace) -> int:
    result = run_fig8a_sdn_overhead(seed=args.seed)
    _print_rows(result.rows())
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    result = run_fig8_saturation(seed=args.seed, step_duration_s=args.step_seconds)
    _print_rows(result.rows())
    return 0


def _cmd_fig10a(args: argparse.Namespace) -> int:
    result = run_fig10a_prediction_accuracy(seed=args.seed)
    _print_rows(result.rows())
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    result = run_fig11_network_latency(seed=args.seed)
    _print_rows(result.rows())
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    """Print the paper-vs-measured comparison for every headline number."""
    rows = build_reproduction_summary(seed=args.seed, samples_per_level=args.samples)
    print(format_table(rows))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Run every fast figure experiment and write its rows to CSV files."""
    output_dir = Path(args.output_dir)
    experiments = {
        "fig4_characterization": lambda: run_fig4_characterization(seed=args.seed, samples_per_level=args.samples).rows(),
        "fig5_acceleration_ratios": lambda: run_fig5_acceleration_ratios(seed=args.seed, samples_per_level=args.samples).rows(),
        "fig7_decomposition": lambda: run_fig7_decomposition(seed=args.seed).rows(),
        "fig8a_sdn_overhead": lambda: run_fig8a_sdn_overhead(seed=args.seed).rows(),
        "fig8_saturation": lambda: run_fig8_saturation(seed=args.seed).rows(),
        "fig10a_prediction_accuracy": lambda: run_fig10a_prediction_accuracy(seed=args.seed).rows(),
        "fig11_network_latency": lambda: run_fig11_network_latency(seed=args.seed).rows(),
    }
    written = []
    for name, runner in experiments.items():
        path = write_csv(runner(), output_dir / f"{name}.csv")
        written.append(path)
        log.info("wrote %s", path)
    log.info("exported %d figure datasets to %s", len(written), output_dir)
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    result = run_dynamic_acceleration(
        seed=args.seed,
        users=args.users,
        duration_hours=args.hours,
        target_requests=args.requests,
    )
    _print_rows(result.rows())
    stable = result.stable_user()
    print(f"stable user (Fig. 9b analogue): user {stable}")
    try:
        promoted = result.fully_promoted_user()
        print(f"fully promoted user (Fig. 9c analogue): user {promoted}")
    except ValueError:
        print("no user reached the highest group in this run")
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    """Print the scenario registry as a table."""
    rows = [
        {
            "scenario": spec.name,
            "users": spec.users,
            "hours": spec.duration_hours,
            "slot_min": spec.slot_minutes,
            "pattern": spec.workload.pattern,
            "network": spec.network.profile,
            "sites": (
                f"{len(spec.sites)}:{spec.sites.policy}" if spec.sites else "-"
            ),
            "description": spec.description,
        }
        for spec in builtin_specs()
    ]
    print(format_table(rows))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """Run one named scenario and print its metric row (or JSON)."""
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(str(error.args[0]), file=sys.stderr)
        return 2
    if _invalid_broker(args.broker):
        return 2
    wants_artifacts = bool(args.record_out or args.metrics_out)
    try:
        spec = spec.with_overrides(
            users=args.users,
            duration_hours=args.hours,
            target_requests=args.requests,
            execution=args.execution,
            broker=args.broker,
            capacity_signal=args.capacity_signal,
            telemetry=args.telemetry or bool(args.trace_out) or wants_artifacts or None,
        )
        if args.without_resilience:
            if spec.faults is None:
                print(
                    f"error: scenario {spec.name!r} has no fault plane; "
                    "--without-resilience needs one",
                    file=sys.stderr,
                )
                return 2
            spec = dataclasses.replace(
                spec, faults=spec.faults.without_resilience()
            )
        # Build the collector here (rather than letting the runner resolve
        # the spec knob) so the CLI can read it back for the summary/exports.
        telemetry = Telemetry() if spec.telemetry else None
        if args.shards > 1:
            result = run_sharded_scenario(
                spec,
                seed=args.seed,
                telemetry=telemetry,
                sharding=ShardSpec(shards=args.shards, workers=args.shard_workers),
            )
        else:
            result = run_scenario(spec, seed=args.seed, telemetry=telemetry)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.record_out and telemetry is not None:
        record = build_run_record(
            spec,
            result,
            telemetry,
            shards=args.shards if args.shards > 1 else None,
        )
        record_path = record.save(
            Path(args.record_out) / record_filename(record)
        )
        log.info("wrote run record %s", record_path)
    if args.metrics_out and telemetry is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(_jsonify(telemetry.as_dict()), indent=2) + "\n"
        )
        log.info("wrote telemetry metrics %s", metrics_path)
    if args.trace_out and telemetry is not None:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(
            json.dumps(telemetry.tracer.to_chrome_trace(), indent=2)
        )
        log.info("wrote Chrome trace %s", trace_path)
    if args.json:
        payload = _jsonify(dataclasses.asdict(result))
        if telemetry is not None:
            payload["telemetry"] = _jsonify(telemetry.as_dict())
        print(json.dumps(payload, indent=2))
        return 0
    print(format_table(result.rows()))
    if telemetry is not None:
        print()
        print(format_table(telemetry.tracer.phase_rows()))
        for line in telemetry.summary_lines():
            print(line)
        print()
        print(format_table(telemetry.registry.rows()))
    if result.is_multisite:
        print()
        print(format_table(result.site_rows()))
        group_rows = group_rollup_rows(result.sites)
        if group_rows:
            print()
            print(format_table(group_rows))
        if result.slot_site_requests:
            print()
            print(format_table(routing_share_rows(
                result.slot_site_requests,
                [site.name for site in result.sites],
            )))
        if result.requests_unrouted:
            print(f"unrouted requests (no site available): {result.requests_unrouted}")
        if result.requests_spilled:
            print(f"requests spilled across sites: {result.requests_spilled}")
    return 0


def _cmd_scenario_campaign(args: argparse.Namespace) -> int:
    """Run many scenarios across workers and print the comparison table."""
    if args.only:
        try:
            specs = [get_scenario(name.strip()) for name in args.only.split(",")]
        except KeyError as error:
            print(str(error.args[0]), file=sys.stderr)
            return 2
    else:
        specs = builtin_specs()
    if _invalid_broker(args.broker):
        return 2
    try:
        if args.broker:
            specs = [spec.with_overrides(broker=args.broker) for spec in specs]
        runner = CampaignRunner(
            workers=args.workers,
            seed=args.seed,
            execution=args.execution,
            telemetry=args.telemetry or bool(args.record_out),
        )
        campaign = runner.run(specs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(campaign.format_table())
    if args.csv:
        path = campaign.to_csv(args.csv)
        log.info("wrote %s", path)
    if args.record_out and campaign.records:
        out_dir = Path(args.record_out)
        entries = []
        for record in campaign.records:
            if record is None:
                # Records align index-wise with results; scenarios that ran
                # without live telemetry hold a None placeholder.
                continue
            record_path = record.save(out_dir / record_filename(record))
            entries.append(
                {
                    "scenario": record.scenario,
                    "execution": record.execution,
                    "seed": record.seed,
                    "spec_hash": record.spec_hash,
                    "file": record_path.name,
                }
            )
            log.info("wrote run record %s", record_path)
        manifest_path = out_dir / "manifest.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "schema": "repro.campaign-manifest/1",
                    "campaign_seed": campaign.seed,
                    "records": entries,
                },
                indent=2,
            )
            + "\n"
        )
        log.info("wrote campaign manifest %s", manifest_path)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a run record as a self-contained HTML dashboard + OpenMetrics."""
    try:
        record = load_run_record(args.record)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    record_path = Path(args.record)
    html_path = Path(args.out) if args.out else record_path.with_suffix(".html")
    html_path.parent.mkdir(parents=True, exist_ok=True)
    html_path.write_text(render_report(record), encoding="utf-8")
    log.info("wrote HTML report %s", html_path)
    om_path = (
        Path(args.openmetrics)
        if args.openmetrics
        else record_path.with_suffix(".om")
    )
    om_path.parent.mkdir(parents=True, exist_ok=True)
    om_path.write_text(
        to_openmetrics(
            {
                "counters": record.counters,
                "gauges": record.gauges,
                "histograms": record.histograms,
            }
        ),
        encoding="utf-8",
    )
    log.info("wrote OpenMetrics export %s", om_path)
    print(f"report: {html_path}")
    print(f"openmetrics: {om_path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Diff two run records; nonzero exit on a regression verdict."""
    try:
        record_a = load_run_record(args.record_a)
        record_b = load_run_record(args.record_b)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = diff_records(
        record_a,
        record_b,
        max_counter_delta_pct=args.max_counter_delta_pct,
        max_series_divergence=args.max_series_divergence,
        counter_filter=args.counter or None,
        series_filter=args.series or None,
    )
    if args.json:
        print(json.dumps(_jsonify(diff.as_dict()), indent=2))
    else:
        for line in diff.summary_lines(limit=args.limit):
            print(line)
    return 1 if diff.verdict == "regression" else 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    """Run a benchmark suite and write ``BENCH_<label>.json``."""
    try:
        records = run_benchmarks(suite=args.suite, budget=args.budget, seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = BenchReport(
        label=args.label, suite=args.suite, budget=args.budget, seed=args.seed,
        records=records,
    ).finalize()
    rows = [
        {
            "benchmark": record.name,
            "wall_s": round(record.wall_s, 4),
            "ops": int(record.ops),
            "ops_per_s": round(record.ops_per_s, 1),
            **{key: round(value, 3) for key, value in record.extras.items()},
        }
        for record in report.records
    ]
    print(format_table(rows))
    print(f"peak RSS: {report.peak_rss_kb} kB")
    path = report.write(args.output_dir)
    log.info("wrote %s", path)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    """Compare two bench reports; nonzero exit on >threshold regressions."""
    try:
        baseline = BenchReport.load(args.baseline)
        current = BenchReport.load(args.current)
        comparisons, regressions, missing = compare_reports(
            baseline, current, threshold=args.threshold
        )
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        {
            "benchmark": comparison.name,
            "baseline_ops_per_s": round(comparison.baseline_ops_per_s, 1),
            "current_ops_per_s": round(comparison.current_ops_per_s, 1),
            "ratio": round(comparison.ratio, 3),
            "status": "REGRESSED" if comparison.regressed(args.threshold) else "ok",
        }
        for comparison in comparisons
    ]
    rows.extend(
        {
            "benchmark": name,
            "baseline_ops_per_s": "-",
            "current_ops_per_s": "-",
            "ratio": "-",
            "status": "UNMEASURED",
        }
        for name in missing
    )
    print(format_table(rows))
    if baseline.peak_rss_kb and current.peak_rss_kb:
        rss_ratio = current.peak_rss_kb / baseline.peak_rss_kb
        print(
            f"peak RSS: baseline {baseline.peak_rss_kb} kB -> "
            f"current {current.peak_rss_kb} kB (x{rss_ratio:.2f})"
        )
    if not comparisons:
        print("no matching benchmarks between the two reports", file=sys.stderr)
        return 2
    failed = False
    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed by more than "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        failed = True
    if missing:
        print(
            f"{len(missing)} baseline benchmark(s) unmeasured in the current "
            f"report: {', '.join(missing)}",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(f"no regression beyond {args.threshold:.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-accel`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-accel",
        description="Regenerate the evaluation figures of 'Modeling Mobile Code "
        "Acceleration in the Cloud' (ICDCS 2017).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", action="store_true",
        help="also show debug-level progress messages (stderr)",
    )
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="suppress informational progress messages (stderr)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler: Callable[[argparse.Namespace], int], help_text: str):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=0, help="root random seed")
        sub.set_defaults(handler=handler)
        return sub

    for name, handler, help_text in [
        ("fig4", _cmd_fig4, "instance characterization curves (Fig. 4)"),
        ("fig5", _cmd_fig5, "acceleration-level ratios (Fig. 5)"),
        ("fig6", _cmd_fig6, "t2.nano vs t2.micro anomaly (Fig. 6)"),
        ("fig7", _cmd_fig7, "response-time decomposition (Fig. 7a/7b)"),
        ("fig8a", _cmd_fig8a, "SDN routing overhead (Fig. 8a)"),
        ("fig8", _cmd_fig8, "saturation under doubling arrival rate (Fig. 8b/8c)"),
        ("fig10a", _cmd_fig10a, "prediction accuracy (Fig. 10a)"),
        ("fig11", _cmd_fig11, "3G/LTE latency per operator (Fig. 11)"),
        ("dynamic", _cmd_dynamic, "dynamic acceleration experiment (Fig. 9, 10b, 10c)"),
        ("export", _cmd_export, "write CSV datasets for every fast figure"),
        ("summary", _cmd_summary, "paper-vs-measured comparison of every headline number"),
    ]:
        sub = add(name, handler, help_text)
        if name in ("fig4", "fig5", "fig6", "export", "summary"):
            sub.add_argument("--samples", type=int, default=200, help="samples per concurrency level")
        if name == "fig8":
            sub.add_argument("--step-seconds", type=float, default=10.0, help="seconds per arrival rate step")
        if name == "dynamic":
            sub.add_argument("--users", type=int, default=100, help="number of mobile users")
            sub.add_argument("--hours", type=float, default=2.0, help="experiment duration in hours")
            sub.add_argument("--requests", type=int, default=1000, help="approximate total requests")
        if name == "export":
            sub.add_argument("--output-dir", default="results", help="directory for the CSV files")

    scenario = subparsers.add_parser(
        "scenario", help="declarative scenario engine (list | run | campaign)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_list = scenario_sub.add_parser("list", help="show the scenario registry")
    scenario_list.set_defaults(handler=_cmd_scenario_list)

    scenario_run = scenario_sub.add_parser("run", help="run one scenario end to end")
    scenario_run.add_argument("name", help="registered scenario name")
    scenario_run.add_argument(
        "--seed", type=int, default=None,
        help="root random seed (default: the spec's pinned seed, else 0)",
    )
    scenario_run.add_argument("--users", type=int, default=None, help="override user count")
    scenario_run.add_argument("--hours", type=float, default=None, help="override duration")
    scenario_run.add_argument(
        "--requests", type=int, default=None, help="override target request count"
    )
    scenario_run.add_argument(
        "--execution", default=None, choices=("event", "batched"),
        help="execution mode (batched = vectorised fast path)",
    )
    scenario_run.add_argument(
        "--shards", type=int, default=1,
        help="partition the user population across N worker processes "
        "(batched execution with a static broker only; shards=1 is "
        "bit-identical to an unsharded run)",
    )
    scenario_run.add_argument(
        "--shard-workers", type=int, default=None, dest="shard_workers",
        metavar="N",
        help="process-pool size for --shards (default: one per shard; "
        "1 runs every shard sequentially in-process)",
    )
    scenario_run.add_argument(
        "--broker", default=None,
        help="override the federation broker policy (multi-site scenarios "
        "only; e.g. dynamic-load)",
    )
    scenario_run.add_argument(
        "--capacity-signal", default=None, choices=("per-group", "fleet"),
        dest="capacity_signal",
        help="override the dynamic broker's live-state resolution "
        "(multi-site scenarios only; fleet = legacy scalar signal)",
    )
    scenario_run.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON (per-site and per-group rows, "
        "spillover and per-slot routing fields included)",
    )
    scenario_run.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics and slot-phase spans; prints a phase/metric "
        "summary (or embeds a 'telemetry' key under --json)",
    )
    scenario_run.add_argument(
        "--trace-out", default="", dest="trace_out", metavar="PATH",
        help="write the run's span timeline as a Chrome-trace JSON file "
        "(implies --telemetry; open via chrome://tracing or ui.perfetto.dev)",
    )
    scenario_run.add_argument(
        "--record-out", default="", dest="record_out", metavar="DIR",
        help="write a versioned run-record JSON artifact (slot series, "
        "counters, span rows) into DIR (implies --telemetry; feed the file "
        "to 'repro-accel report' or 'repro-accel diff')",
    )
    scenario_run.add_argument(
        "--metrics-out", default="", dest="metrics_out", metavar="PATH",
        help="write the telemetry payload (metrics + trace) as JSON to PATH "
        "(implies --telemetry)",
    )
    scenario_run.add_argument(
        "--without-resilience", action="store_true", dest="without_resilience",
        help="strip the scenario's retry/failover/local-fallback policy "
        "(fault-plane scenarios only) — the control arm of the resilience "
        "A/B twin",
    )
    scenario_run.set_defaults(handler=_cmd_scenario_run)

    scenario_campaign = scenario_sub.add_parser(
        "campaign", help="run many scenarios in parallel and compare them"
    )
    scenario_campaign.add_argument("--seed", type=int, default=0, help="campaign root seed")
    scenario_campaign.add_argument(
        "--workers", type=int, default=None, help="worker processes (default: one per scenario, capped at CPU count)"
    )
    scenario_campaign.add_argument(
        "--only", default="", help="comma-separated subset of scenario names"
    )
    scenario_campaign.add_argument(
        "--execution", default=None, choices=("event", "batched"),
        help="override every scenario's execution mode "
        "(batched = whole campaign on the vectorised fast path)",
    )
    scenario_campaign.add_argument(
        "--broker", default=None,
        help="override every selected scenario's federation broker policy "
        "(all selected scenarios must be multi-site)",
    )
    scenario_campaign.add_argument(
        "--csv", default="", help="also write the comparison table to this CSV path"
    )
    scenario_campaign.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics and slot series in every worker (the "
        "comparison table stays bit-identical)",
    )
    scenario_campaign.add_argument(
        "--record-out", default="", dest="record_out", metavar="DIR",
        help="write one run-record JSON per scenario plus a manifest.json "
        "into DIR (implies --telemetry)",
    )
    scenario_campaign.set_defaults(handler=_cmd_scenario_campaign)

    bench = subparsers.add_parser(
        "bench", help="performance benchmarks (run | compare)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run micro/macro benchmarks and write BENCH_<label>.json"
    )
    bench_run.add_argument("--label", default="current", help="label for the BENCH json")
    bench_run.add_argument(
        "--suite", default="all", choices=("micro", "macro", "all"),
        help="which benchmark suite to run",
    )
    bench_run.add_argument(
        "--budget", default="full", choices=("smoke", "full", "xl"),
        help="smoke: CI-sized, full: 10k/100k macro runs, xl: adds a 1M batched run",
    )
    bench_run.add_argument("--seed", type=int, default=0, help="root random seed")
    bench_run.add_argument(
        "--output-dir", default=".", help="directory for the BENCH json"
    )
    bench_run.set_defaults(handler=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare", help="compare two BENCH json files, fail on regressions"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_<label>.json")
    bench_compare.add_argument("current", help="current BENCH_<label>.json")
    bench_compare.add_argument(
        "--threshold", type=float, default=DEFAULT_REGRESSION_THRESHOLD,
        help="relative throughput drop that counts as a regression (default 0.2)",
    )
    bench_compare.set_defaults(handler=_cmd_bench_compare)

    report = subparsers.add_parser(
        "report",
        help="render a run-record file as a self-contained HTML dashboard "
        "plus an OpenMetrics text export",
    )
    report.add_argument("record", help="run-record JSON (from --record-out)")
    report.add_argument(
        "--out", default="", metavar="PATH",
        help="HTML output path (default: the record path with .html)",
    )
    report.add_argument(
        "--openmetrics", default="", metavar="PATH",
        help="OpenMetrics output path (default: the record path with .om)",
    )
    report.set_defaults(handler=_cmd_report)

    diff = subparsers.add_parser(
        "diff",
        help="compare two run records (counters by name, series by slot) "
        "and print a regression verdict",
    )
    diff.add_argument("record_a", help="baseline run-record JSON")
    diff.add_argument("record_b", help="candidate run-record JSON")
    diff.add_argument(
        "--json", action="store_true", help="print the full diff as JSON"
    )
    diff.add_argument(
        "--max-counter-delta-pct", type=float, default=0.0,
        dest="max_counter_delta_pct", metavar="PCT",
        help="largest acceptable relative counter change in percent "
        "(default 0: any change is a regression)",
    )
    diff.add_argument(
        "--max-series-divergence", type=float, default=0.0,
        dest="max_series_divergence", metavar="VALUE",
        help="largest acceptable per-slot absolute series divergence "
        "(default 0: any divergence is a regression)",
    )
    diff.add_argument(
        "--counter", action="append", default=[], metavar="PATTERN",
        help="compare only counters matching this fnmatch pattern "
        "(repeatable; default: all counters)",
    )
    diff.add_argument(
        "--series", action="append", default=[], metavar="PATTERN",
        help="compare only series matching this fnmatch pattern "
        "(repeatable; default: all series)",
    )
    diff.add_argument(
        "--limit", type=int, default=12,
        help="rows to print per section in the text summary",
    )
    diff.set_defaults(handler=_cmd_diff)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-accel`` console script.

    Returns a process exit code rather than letting ``argparse`` terminate
    the interpreter: unknown commands yield 2, ``--version`` yields 0, so
    embedding callers (and tests) observe a plain integer either way.
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    _configure_logging(args.verbose, args.quiet)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
