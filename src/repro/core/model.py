"""The combined adaptive model.

:class:`AdaptiveModel` is the component the SDN-accelerator invokes at the end
of each provisioning period: it

1. slices the request trace log into time slots
   (:class:`~repro.core.timeslots.TimeSlotHistory`),
2. predicts the workload of the next period with the edit-distance predictor
   (:class:`~repro.core.prediction.WorkloadPredictor`), and
3. computes the cost-minimal instance allocation for the predicted workload
   with the ILP allocator (:class:`~repro.core.allocation.IlpAllocator`).

The model is substrate-independent: it consumes only plain trace records and
an instance-option table, so it can be run against real production logs just
as well as against the simulated testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.allocation import (
    AllocationError,
    AllocationPlan,
    AllocationProblem,
    IlpAllocator,
    InstanceOption,
    best_effort_plan,
)
from repro.core.prediction import PredictionOutcome, WorkloadPredictor, prediction_accuracy
from repro.core.timeslots import TimeSlot, TimeSlotHistory
from repro.simulation.clock import MILLISECONDS_PER_HOUR
from repro.workload.traces import TraceLog


@dataclass(frozen=True)
class ModelDecision:
    """One end-of-period decision of the adaptive model."""

    period_index: int
    current_slot: TimeSlot
    prediction: PredictionOutcome
    plan: AllocationPlan

    @property
    def predicted_workloads(self) -> Dict[int, int]:
        return self.prediction.predicted_slot.workload_vector()

    @property
    def predicted_total(self) -> int:
        return self.prediction.predicted_slot.total_workload()


class AdaptiveModel:
    """Workload prediction plus cost-optimal allocation (Section IV)."""

    def __init__(
        self,
        options: Sequence[InstanceOption],
        *,
        slot_length_ms: float = MILLISECONDS_PER_HOUR,
        instance_cap: int = 20,
        predictor: Optional[WorkloadPredictor] = None,
        allocator: Optional[IlpAllocator] = None,
        min_history: int = 2,
    ) -> None:
        if not options:
            raise ValueError("the model needs at least one instance option")
        if slot_length_ms <= 0:
            raise ValueError(f"slot_length_ms must be positive, got {slot_length_ms}")
        self.options = tuple(options)
        self.slot_length_ms = slot_length_ms
        self.instance_cap = instance_cap
        if min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {min_history}")
        # ``min_history`` counts the slots that must have been observed before
        # the first prediction.  The newest slot is the prediction query and is
        # excluded from the knowledge base, so the predictor itself needs one
        # fewer slot of knowledge.
        self.predictor = (
            predictor
            if predictor is not None
            else WorkloadPredictor(
                TimeSlotHistory(slot_length_ms=slot_length_ms),
                min_history=max(min_history - 1, 1),
            )
        )
        self.allocator = allocator if allocator is not None else IlpAllocator()
        self.decisions: List[ModelDecision] = []

    @property
    def history(self) -> TimeSlotHistory:
        """The slot history accumulated so far."""
        return self.predictor.history

    def groups(self) -> List[int]:
        """Acceleration groups known to the model (from its instance options)."""
        return sorted({option.acceleration_group for option in self.options})

    def observe_slot(self, slot: TimeSlot) -> None:
        """Record one completed time slot in the knowledge base."""
        self.predictor.observe(slot)

    def observe_trace_window(
        self, log: TraceLog, start_ms: float, end_ms: float
    ) -> TimeSlot:
        """Slot the log records of ``[start_ms, end_ms)`` and record the slot."""
        window = log.window(start_ms, end_ms)
        users_per_group = {group: set() for group in self.groups()}
        for record in window:
            users_per_group.setdefault(record.acceleration_group, set()).add(record.user_id)
        slot = TimeSlot.from_user_sets(len(self.history), users_per_group)
        self.observe_slot(slot)
        return slot

    def can_predict(self) -> bool:
        """Whether enough history has accumulated for a prediction."""
        return len(self.history) >= self.predictor.required_history(current_in_history=True)

    def decide(self, current_slot: Optional[TimeSlot] = None) -> ModelDecision:
        """Predict the next period's workload and compute the allocation plan.

        Parameters
        ----------
        current_slot:
            The slot describing the period that just ended; defaults to the
            latest slot in the history.
        """
        if current_slot is None:
            current_slot = self.history.latest()
        prediction = self.predictor.predict(current_slot)
        workloads = prediction.predicted_slot.workload_vector(self.groups())
        problem = AllocationProblem(
            options=self.options,
            group_workloads=workloads,
            instance_cap=self.instance_cap,
        )
        try:
            plan = self.allocator.allocate(problem)
        except AllocationError:
            # The predicted workload outgrew the account cap: saturate the
            # cap and let admission control shed the excess (the capped
            # utility-computing model of Section IV, not a simulation error).
            plan = best_effort_plan(problem)
        decision = ModelDecision(
            period_index=len(self.decisions),
            current_slot=current_slot,
            prediction=prediction,
            plan=plan,
        )
        self.decisions.append(decision)
        return decision

    def evaluate_decision(self, decision: ModelDecision, realised_slot: TimeSlot) -> float:
        """Accuracy of a past decision once the period's real workload is known."""
        return prediction_accuracy(decision.prediction.predicted_slot, realised_slot)

    def run_over_history(
        self, history: TimeSlotHistory, *, warmup: Optional[int] = None
    ) -> List[ModelDecision]:
        """Replay a full slot history, deciding after every slot.

        ``warmup`` slots (default: the predictor's required history) are only
        observed, not predicted from.  Returns the decisions made.
        """
        if warmup is None:
            warmup = self.predictor.required_history(current_in_history=True)
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        decisions: List[ModelDecision] = []
        for index, slot in enumerate(history):
            self.observe_slot(slot)
            if index + 1 < warmup:
                continue
            if not self.can_predict():
                continue
            decisions.append(self.decide(slot))
        return decisions
