"""Edit-distance metric between time slots.

Section IV-B1 of the paper defines the distance between two time slots
``t_x = {a^x_1, ..., a^x_n}`` and ``t_z = {a^z_1, ..., a^z_n}`` as

    Δ(t_x, t_z) = Σ_r δ(a^x_r, a^z_r)

where ``δ(a^x_r, a^z_r)`` is 0 when the two groups hold exactly the same user
assignment and otherwise the *edit distance* ``D > 0`` between the two groups
"based on the assigned users".

Interpreting a group as the (unordered) set of user ids assigned to it, the
minimal number of single-user insertions/deletions that transforms one group
into the other is the size of the symmetric difference of the two sets; that
is the ``D`` used here.  When user identities are synthetic (slots built from
counts only) this degenerates gracefully to ``|count_x - count_z|``.

A normalised variant (following the normalised edit distance of Marzal &
Vidal, the paper's reference [33]) divides by the total number of distinct
users involved, giving a value in ``[0, 1]`` used for the accuracy metric.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Set

from repro.core.timeslots import TimeSlot


def group_edit_distance(users_x: "FrozenSet[int] | Set[int]", users_z: "FrozenSet[int] | Set[int]") -> int:
    """δ between two acceleration groups: 0 if identical, else the edit distance.

    The edit distance between two user sets is the number of single-user
    insertions plus deletions needed to transform one into the other, i.e. the
    size of their symmetric difference.
    """
    if users_x == users_z:
        return 0
    return len(set(users_x) ^ set(users_z))


def slot_edit_distance(
    slot_x: TimeSlot,
    slot_z: TimeSlot,
    groups: Optional[Sequence[int]] = None,
) -> int:
    """Δ(t_x, t_z): sum of per-group edit distances over ``groups``.

    ``groups`` defaults to the union of groups present in either slot, so a
    group that is populated in one slot and absent in the other contributes
    the full size of its user set.
    """
    if groups is None:
        group_ids = sorted(set(slot_x.group_ids) | set(slot_z.group_ids))
    else:
        group_ids = list(groups)
    return sum(
        group_edit_distance(slot_x.users_in_group(group), slot_z.users_in_group(group))
        for group in group_ids
    )


def normalized_slot_distance(
    slot_x: TimeSlot,
    slot_z: TimeSlot,
    groups: Optional[Sequence[int]] = None,
) -> float:
    """Normalised Δ in ``[0, 1]``: 0 for identical slots, 1 for disjoint ones.

    The normaliser is the total number of (group, user) assignments across
    both slots, which upper-bounds the raw edit distance.
    """
    if groups is None:
        group_ids = sorted(set(slot_x.group_ids) | set(slot_z.group_ids))
    else:
        group_ids = list(groups)
    distance = slot_edit_distance(slot_x, slot_z, group_ids)
    normaliser = sum(
        len(slot_x.users_in_group(group)) + len(slot_z.users_in_group(group))
        for group in group_ids
    )
    if normaliser == 0:
        return 0.0
    return min(distance / normaliser, 1.0)
