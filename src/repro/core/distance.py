"""Edit-distance metric between time slots.

Section IV-B1 of the paper defines the distance between two time slots
``t_x = {a^x_1, ..., a^x_n}`` and ``t_z = {a^z_1, ..., a^z_n}`` as

    Δ(t_x, t_z) = Σ_r δ(a^x_r, a^z_r)

where ``δ(a^x_r, a^z_r)`` is 0 when the two groups hold exactly the same user
assignment and otherwise the *edit distance* ``D > 0`` between the two groups
"based on the assigned users".

Interpreting a group as the (unordered) set of user ids assigned to it, the
minimal number of single-user insertions/deletions that transforms one group
into the other is the size of the symmetric difference of the two sets; that
is the ``D`` used here.  When user identities are synthetic (slots built from
counts only) this degenerates gracefully to ``|count_x - count_z|``.

A normalised variant (following the normalised edit distance of Marzal &
Vidal, the paper's reference [33]) divides by the total number of distinct
users involved, giving a value in ``[0, 1]`` used for the accuracy metric.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.timeslots import TimeSlot


def group_edit_distance(users_x: "FrozenSet[int] | Set[int]", users_z: "FrozenSet[int] | Set[int]") -> int:
    """δ between two acceleration groups: 0 if identical, else the edit distance.

    The edit distance between two user sets is the number of single-user
    insertions plus deletions needed to transform one into the other, i.e. the
    size of their symmetric difference.
    """
    if users_x == users_z:
        return 0
    return len(set(users_x) ^ set(users_z))


def slot_edit_distance(
    slot_x: TimeSlot,
    slot_z: TimeSlot,
    groups: Optional[Sequence[int]] = None,
) -> int:
    """Δ(t_x, t_z): sum of per-group edit distances over ``groups``.

    ``groups`` defaults to the union of groups present in either slot, so a
    group that is populated in one slot and absent in the other contributes
    the full size of its user set.
    """
    if groups is None:
        group_ids = sorted(set(slot_x.group_ids) | set(slot_z.group_ids))
    else:
        group_ids = list(groups)
    return sum(
        group_edit_distance(slot_x.users_in_group(group), slot_z.users_in_group(group))
        for group in group_ids
    )


def normalized_slot_distance(
    slot_x: TimeSlot,
    slot_z: TimeSlot,
    groups: Optional[Sequence[int]] = None,
) -> float:
    """Normalised Δ in ``[0, 1]``: 0 for identical slots, 1 for disjoint ones.

    The normaliser is the total number of (group, user) assignments across
    both slots, which upper-bounds the raw edit distance.
    """
    if groups is None:
        group_ids = sorted(set(slot_x.group_ids) | set(slot_z.group_ids))
    else:
        group_ids = list(groups)
    distance = slot_edit_distance(slot_x, slot_z, group_ids)
    normaliser = sum(
        len(slot_x.users_in_group(group)) + len(slot_z.users_in_group(group))
        for group in group_ids
    )
    if normaliser == 0:
        return 0.0
    return min(distance / normaliser, 1.0)


# ---------------------------------------------------------------------------
# Batched knowledge-base computation
# ---------------------------------------------------------------------------


class SlotDistanceIndex:
    """Vectorised edit distances from one query slot to many indexed slots.

    The knowledge base ``P`` recomputed every provisioning period is a loop of
    :func:`slot_edit_distance` calls over the whole history — the hot path of
    the adaptive model.  This index encodes each slot once as the set of its
    ``(group, user)`` assignment pairs (mapped to stable integer columns) and
    answers a query with one vectorised membership test over the concatenated
    history instead of a Python loop:

        Δ(q, t_i) = |q| + |t_i| - 2 · |q ∩ t_i|

    where ``|·|`` counts assignment pairs.  Summing per-group symmetric
    differences is identical to the symmetric difference of the pair sets, so
    the result matches :func:`slot_edit_distance` exactly.

    Slots are appended with :meth:`add` (the history only ever grows) into a
    capacity-doubling flat buffer, so a grow-query-grow loop — the adaptive
    model's per-period pattern — costs amortised O(1) per appended assignment
    instead of re-concatenating the whole history after every ``add``.
    """

    def __init__(self, slots: Optional[Sequence[TimeSlot]] = None) -> None:
        self._columns: Dict[Tuple[int, int], int] = {}
        self._count = 0
        self._sizes: np.ndarray = np.zeros(16, dtype=np.int64)
        self._flat_cols: np.ndarray = np.empty(256, dtype=np.int64)
        self._flat_index: np.ndarray = np.empty(256, dtype=np.int64)
        self._flat_len = 0
        if slots is not None:
            for slot in slots:
                self.add(slot)

    def __len__(self) -> int:
        return self._count

    def _encode(self, slot: TimeSlot) -> np.ndarray:
        columns = self._columns
        codes: List[int] = []
        for group, users in slot.groups.items():
            for user in users:
                key = (group, user)
                code = columns.get(key)
                if code is None:
                    code = len(columns)
                    columns[key] = code
                codes.append(code)
        return np.asarray(codes, dtype=np.int64)

    @staticmethod
    def _grown(buffer: np.ndarray, needed: int) -> np.ndarray:
        capacity = buffer.size
        while capacity < needed:
            capacity *= 2
        if capacity == buffer.size:
            return buffer
        grown = np.empty(capacity, dtype=buffer.dtype)
        grown[: buffer.size] = buffer
        return grown

    def add(self, slot: TimeSlot) -> None:
        """Append one slot to the flat buffer (amortised O(slot size))."""
        encoded = self._encode(slot)
        if self._count >= self._sizes.size:
            self._sizes = self._grown(self._sizes, self._count + 1)
        needed = self._flat_len + encoded.size
        self._flat_cols = self._grown(self._flat_cols, needed)
        self._flat_index = self._grown(self._flat_index, needed)
        self._sizes[self._count] = encoded.size
        self._flat_cols[self._flat_len : needed] = encoded
        self._flat_index[self._flat_len : needed] = self._count
        self._flat_len = needed
        self._count += 1

    def distances_from(self, current: TimeSlot) -> np.ndarray:
        """Δ(current, t_i) for every indexed slot, as an int64 array."""
        count = self._count
        query = self._encode(current)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        flat_cols = self._flat_cols[: self._flat_len]
        if query.size and flat_cols.size:
            member = np.isin(flat_cols, query)
            overlaps = np.bincount(
                self._flat_index[: self._flat_len][member], minlength=count
            )
        else:
            overlaps = np.zeros(count, dtype=np.int64)
        sizes = self._sizes[:count]
        return sizes + np.int64(query.size) - 2 * overlaps


def batch_slot_distances(current: TimeSlot, slots: Sequence[TimeSlot]) -> np.ndarray:
    """Vectorised ``[Δ(current, slot) for slot in slots]``.

    One-shot convenience wrapper over :class:`SlotDistanceIndex`; callers that
    query a growing history repeatedly should keep an index instead.
    """
    return SlotDistanceIndex(slots).distances_from(current)
