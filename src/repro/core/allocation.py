"""Dynamic resource allocation by integer linear programming (Section IV-C).

Given the predicted per-group workload ``W = Σ W_{a_n}`` the model minimises
the cost of the instances allocated to handle it:

    minimise    Σ_s x_s · c_s
    subject to  Σ_{s ∈ group n} x_s · K_s  >  W_{a_n}      for every group a_n
                Σ_s x_s  <  CC                              (account cap)
                x_s ∈ {0, 1, 2, ...}

where ``c_s`` is the hourly price of instance type ``s``, ``K_s`` its
benchmarked capacity in requests (users) per provisioning period, and ``CC``
the cloud vendor's cap on simultaneously running instances (20 for a standard
Amazon account).

Two solvers are provided with identical interfaces:

* :class:`IlpAllocator` — exact optimisation via :func:`scipy.optimize.milp`
  when available, with a pure-Python exact branch-and-bound fallback (per
  acceleration group, since groups do not share instances the problem
  decomposes into independent small knapsack-style subproblems coupled only
  by the instance cap).
* :class:`GreedyAllocator` — a cost-per-capacity greedy baseline used by the
  ablation benchmarks.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

try:  # scipy.optimize.milp exists from scipy 1.9 onwards
    from scipy.optimize import LinearConstraint, milp
    from scipy.optimize import Bounds as _Bounds

    _HAVE_SCIPY_MILP = True
except ImportError:  # pragma: no cover - depends on installed scipy version
    _HAVE_SCIPY_MILP = False


class AllocationError(RuntimeError):
    """Raised when no feasible allocation exists for a problem."""


@dataclass(frozen=True)
class InstanceOption:
    """One allocatable instance type as seen by the allocator.

    ``capacity`` is ``K_s``: how many users (requests per provisioning period)
    one instance of this type can serve at the target acceleration level; it
    comes from the benchmarking of Section VI-A (or from production request
    logs in a real deployment).
    """

    type_name: str
    acceleration_group: int
    cost_per_hour: float
    capacity: float

    def __post_init__(self) -> None:
        if not self.type_name:
            raise ValueError("type_name must be non-empty")
        if self.acceleration_group < 0:
            raise ValueError(
                f"acceleration_group must be >= 0, got {self.acceleration_group}"
            )
        if self.cost_per_hour < 0:
            raise ValueError(f"cost_per_hour must be >= 0, got {self.cost_per_hour}")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")


@dataclass(frozen=True)
class AllocationProblem:
    """The allocator's input: options, per-group demand and the account cap."""

    options: Tuple[InstanceOption, ...]
    group_workloads: Mapping[int, int]
    instance_cap: int = 20
    strict_demand: bool = True

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("at least one instance option is required")
        if self.instance_cap < 1:
            raise ValueError(f"instance_cap must be >= 1, got {self.instance_cap}")
        for group, workload in self.group_workloads.items():
            if workload < 0:
                raise ValueError(f"workload for group {group} must be >= 0, got {workload}")
        object.__setattr__(self, "options", tuple(self.options))
        object.__setattr__(self, "group_workloads", dict(self.group_workloads))

    def options_for_group(self, group: int) -> List[InstanceOption]:
        """Instance options able to serve acceleration group ``group``."""
        return [option for option in self.options if option.acceleration_group == group]

    def demanded_groups(self) -> List[int]:
        """Groups with a strictly positive predicted workload."""
        return sorted(
            group for group, workload in self.group_workloads.items() if workload > 0
        )

    def required_capacity(self, group: int) -> float:
        """The capacity the chosen instances of ``group`` must reach.

        With ``strict_demand`` (the paper's strict ``>`` inequality) the
        capacity must strictly exceed the workload; we realise that as
        ``workload + epsilon`` so integer capacities equal to the workload are
        rejected, matching the constraint as printed.  The epsilon is chosen
        large enough (1e-3 users) to survive the feasibility tolerance of the
        MILP solver while remaining far below one user.
        """
        workload = self.group_workloads.get(group, 0)
        if workload == 0:
            return 0.0
        return workload + 1e-3 if self.strict_demand else float(workload)


@dataclass(frozen=True)
class AllocationPlan:
    """The allocator's output: how many instances of each type to run."""

    counts: Mapping[str, int]
    total_cost: float
    feasible: bool
    group_capacities: Mapping[int, float] = field(default_factory=dict)
    solver: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "counts", dict(self.counts))
        object.__setattr__(self, "group_capacities", dict(self.group_capacities))

    @property
    def total_instances(self) -> int:
        return sum(self.counts.values())

    def count_for(self, type_name: str) -> int:
        return self.counts.get(type_name, 0)

    def non_zero_counts(self) -> Dict[str, int]:
        """Only the types with at least one allocated instance."""
        return {name: count for name, count in self.counts.items() if count > 0}


def build_options_from_catalog(
    catalog,
    *,
    work_units: float,
    response_threshold_ms: float,
    groups: Optional[Sequence[int]] = None,
    capacity_override: Optional[Mapping[str, float]] = None,
) -> List[InstanceOption]:
    """Derive :class:`InstanceOption` entries from an instance catalog.

    ``K_s`` is computed from each type's performance profile as the number of
    concurrent users the type sustains under ``response_threshold_ms`` for a
    task of ``work_units`` (Section IV-C1), unless ``capacity_override``
    provides measured capacities.
    """
    options: List[InstanceOption] = []
    for instance_type in catalog:
        if groups is not None and instance_type.acceleration_level not in groups:
            continue
        if capacity_override and instance_type.name in capacity_override:
            capacity = float(capacity_override[instance_type.name])
        else:
            capacity = float(
                instance_type.profile.capacity_under_threshold(
                    work_units, response_threshold_ms
                )
            )
        if capacity <= 0:
            continue
        options.append(
            InstanceOption(
                type_name=instance_type.name,
                acceleration_group=instance_type.acceleration_level,
                cost_per_hour=instance_type.price_per_hour,
                capacity=capacity,
            )
        )
    return options


def best_effort_plan(problem: AllocationProblem) -> AllocationPlan:
    """A cap-saturating plan for workloads no feasible allocation can cover.

    A capped account cannot crash when demand outgrows it — it provisions as
    much serving capacity as the cap allows and sheds the excess load at
    admission control.  Per demanded group the highest-capacity type (ties:
    cheaper) is selected, every group gets at least one instance, and the
    remaining cap is split proportionally to each group's ideal instance
    count (largest remainder).  The plan is marked ``feasible=False`` so
    callers can tell saturation from a genuine cover.
    """
    demanded = problem.demanded_groups()
    if not demanded:
        raise AllocationError("best-effort plan needs at least one demanded group")
    chosen: Dict[int, InstanceOption] = {}
    ideal: Dict[int, int] = {}
    for group in demanded:
        options = problem.options_for_group(group)
        if not options:
            raise AllocationError(
                f"no instance option can serve acceleration group {group}"
            )
        best = max(options, key=lambda option: (option.capacity, -option.cost_per_hour))
        chosen[group] = best
        ideal[group] = max(
            int(math.ceil(problem.required_capacity(group) / best.capacity)), 1
        )
    cap = problem.instance_cap
    if len(demanded) > cap:
        # Not even one instance per group fits; cover the busiest groups.
        demanded = sorted(
            demanded, key=lambda group: -problem.required_capacity(group)
        )[:cap]
    counts = {group: 1 for group in demanded}
    spare = cap - len(demanded)
    # Water-fill the spare cap one instance at a time into the relatively
    # most under-provisioned group (lowest provisioned/ideal fraction; ties
    # to the busier group, then declaration order), never beyond a group's
    # ideal — so every cap unit that can serve real demand is used.
    while spare > 0:
        candidates = [group for group in demanded if counts[group] < ideal[group]]
        if not candidates:
            break
        target = min(
            candidates,
            key=lambda group: (
                counts[group] / ideal[group],
                -problem.required_capacity(group),
                demanded.index(group),
            ),
        )
        counts[target] += 1
        spare -= 1
    type_counts = {option.type_name: 0 for option in problem.options}
    for group, count in counts.items():
        type_counts[chosen[group].type_name] += count
    total_cost = sum(
        count
        * next(o.cost_per_hour for o in problem.options if o.type_name == name)
        for name, count in type_counts.items()
        if count
    )
    capacities = {
        group: chosen[group].capacity * type_counts[chosen[group].type_name]
        for group in counts
    }
    return AllocationPlan(
        counts=type_counts,
        total_cost=total_cost,
        feasible=False,
        group_capacities=capacities,
        solver="best-effort",
    )


def build_group_options(
    catalog,
    *,
    level_for_type: Mapping[str, int],
    work_units: float,
    response_threshold_ms: float,
    capacity_override: Optional[Mapping[str, float]] = None,
) -> List[InstanceOption]:
    """Catalog options with each type's acceleration group remapped.

    Deployments (and federation sites) assign instance types to acceleration
    groups independently of the catalog's default levels — the paper itself
    re-assigns t2.micro after observing the Fig. 6 anomaly.  This wraps
    :func:`build_options_from_catalog` and rewrites each option's group
    according to ``level_for_type``; types without a mapping keep their
    catalogued level.
    """
    options = []
    for option in build_options_from_catalog(
        catalog,
        work_units=work_units,
        response_threshold_ms=response_threshold_ms,
        capacity_override=capacity_override,
    ):
        group = level_for_type.get(option.type_name, option.acceleration_group)
        options.append(
            InstanceOption(
                type_name=option.type_name,
                acceleration_group=group,
                cost_per_hour=option.cost_per_hour,
                capacity=option.capacity,
            )
        )
    return options


class IlpAllocator:
    """Exact cost-minimising allocator.

    Uses :func:`scipy.optimize.milp` when available and falls back to an exact
    per-group branch-and-bound enumeration otherwise.  Both paths produce the
    same optimal plans (the fallback is also used as a cross-check in the test
    suite).
    """

    def __init__(self, *, prefer_scipy: bool = True) -> None:
        self.prefer_scipy = prefer_scipy and _HAVE_SCIPY_MILP

    def allocate(self, problem: AllocationProblem) -> AllocationPlan:
        """Solve the allocation ILP; raises :class:`AllocationError` if infeasible."""
        demanded = problem.demanded_groups()
        if not demanded:
            return AllocationPlan(
                counts={option.type_name: 0 for option in problem.options},
                total_cost=0.0,
                feasible=True,
                group_capacities={},
                solver="trivial",
            )
        for group in demanded:
            if not problem.options_for_group(group):
                raise AllocationError(
                    f"no instance option can serve acceleration group {group}"
                )
        if self.prefer_scipy:
            plan = self._allocate_scipy(problem)
            if plan is not None:
                return plan
        return self._allocate_branch_and_bound(problem)

    # -- scipy path ----------------------------------------------------------

    def _allocate_scipy(self, problem: AllocationProblem) -> Optional[AllocationPlan]:
        options = list(problem.options)
        costs = np.array([option.cost_per_hour for option in options], dtype=float)
        demanded = problem.demanded_groups()

        constraints = []
        # Per-group capacity constraints: sum of capacities >= workload (+eps).
        for group in demanded:
            row = np.array(
                [
                    option.capacity if option.acceleration_group == group else 0.0
                    for option in options
                ],
                dtype=float,
            )
            constraints.append(
                LinearConstraint(row, lb=problem.required_capacity(group), ub=np.inf)
            )
        # Account cap: total instances <= cap.
        constraints.append(
            LinearConstraint(np.ones(len(options)), lb=0, ub=problem.instance_cap)
        )
        bounds = _Bounds(lb=np.zeros(len(options)), ub=np.full(len(options), problem.instance_cap))
        result = milp(
            c=costs,
            constraints=constraints,
            integrality=np.ones(len(options)),
            bounds=bounds,
        )
        if not result.success:
            return None
        counts = {
            option.type_name: int(round(x))
            for option, x in zip(options, result.x)
        }
        return self._finalise_plan(problem, counts, solver="scipy-milp")

    # -- exact fallback -------------------------------------------------------

    def _allocate_branch_and_bound(self, problem: AllocationProblem) -> AllocationPlan:
        """Exact enumeration, decomposed per acceleration group.

        Instances of one type serve exactly one group, so the only coupling
        between groups is the shared instance cap.  We enumerate, per group,
        the Pareto-optimal (count, cost) covers of its workload, then combine
        groups minimising total cost subject to the cap.
        """
        demanded = problem.demanded_groups()
        per_group_pareto: List[List[Tuple[int, float, Dict[str, int]]]] = []
        for group in demanded:
            covers = self._group_covers(problem, group)
            if not covers:
                raise AllocationError(
                    f"acceleration group {group} cannot be covered within the instance cap"
                )
            per_group_pareto.append(covers)

        best_cost = math.inf
        best_counts: Optional[Dict[str, int]] = None
        for combination in itertools.product(*per_group_pareto):
            total_instances = sum(entry[0] for entry in combination)
            if total_instances > problem.instance_cap:
                continue
            total_cost = sum(entry[1] for entry in combination)
            if total_cost < best_cost:
                best_cost = total_cost
                merged: Dict[str, int] = {}
                for _, _, counts in combination:
                    for name, count in counts.items():
                        merged[name] = merged.get(name, 0) + count
                best_counts = merged
        if best_counts is None:
            raise AllocationError(
                "no combination of per-group covers fits within the instance cap"
            )
        counts = {option.type_name: 0 for option in problem.options}
        counts.update(best_counts)
        return self._finalise_plan(problem, counts, solver="branch-and-bound")

    def _group_covers(
        self, problem: AllocationProblem, group: int
    ) -> List[Tuple[int, float, Dict[str, int]]]:
        """Pareto-optimal ways to cover one group's workload.

        Returns tuples ``(instance_count, cost, counts)`` such that no other
        cover is both cheaper and uses no more instances.
        """
        options = problem.options_for_group(group)
        required = problem.required_capacity(group)
        cap = problem.instance_cap
        best_by_count: Dict[int, Tuple[float, Dict[str, int]]] = {}

        max_counts = []
        for option in options:
            needed = int(math.ceil(required / option.capacity))
            max_counts.append(min(needed, cap))

        for combo in itertools.product(*(range(count + 1) for count in max_counts)):
            total_instances = sum(combo)
            if total_instances == 0 or total_instances > cap:
                continue
            capacity = sum(
                count * option.capacity for count, option in zip(combo, options)
            )
            if capacity < required:
                continue
            cost = sum(
                count * option.cost_per_hour for count, option in zip(combo, options)
            )
            current = best_by_count.get(total_instances)
            if current is None or cost < current[0]:
                best_by_count[total_instances] = (
                    cost,
                    {
                        option.type_name: count
                        for option, count in zip(options, combo)
                        if count > 0
                    },
                )
        # Keep only Pareto-optimal entries (no entry with both fewer instances
        # and lower-or-equal cost).
        pareto: List[Tuple[int, float, Dict[str, int]]] = []
        for count in sorted(best_by_count):
            cost, counts = best_by_count[count]
            if pareto and pareto[-1][1] <= cost:
                continue
            pareto.append((count, cost, counts))
        return pareto

    # -- shared ---------------------------------------------------------------

    def _finalise_plan(
        self, problem: AllocationProblem, counts: Dict[str, int], solver: str
    ) -> AllocationPlan:
        capacity_by_group: Dict[int, float] = {}
        cost = 0.0
        option_by_name = {option.type_name: option for option in problem.options}
        for name, count in counts.items():
            option = option_by_name[name]
            cost += count * option.cost_per_hour
            capacity_by_group[option.acceleration_group] = (
                capacity_by_group.get(option.acceleration_group, 0.0)
                + count * option.capacity
            )
        feasible = sum(counts.values()) <= problem.instance_cap and all(
            capacity_by_group.get(group, 0.0) >= problem.required_capacity(group)
            for group in problem.demanded_groups()
        )
        return AllocationPlan(
            counts=counts,
            total_cost=cost,
            feasible=feasible,
            group_capacities=capacity_by_group,
            solver=solver,
        )


class GreedyAllocator:
    """Baseline: repeatedly add the cheapest-per-capacity instance per group."""

    def allocate(self, problem: AllocationProblem) -> AllocationPlan:
        counts: Dict[str, int] = {option.type_name: 0 for option in problem.options}
        total_instances = 0
        for group in problem.demanded_groups():
            options = problem.options_for_group(group)
            if not options:
                raise AllocationError(
                    f"no instance option can serve acceleration group {group}"
                )
            best = min(options, key=lambda option: option.cost_per_hour / option.capacity)
            required = problem.required_capacity(group)
            needed = int(math.ceil(required / best.capacity))
            counts[best.type_name] += needed
            total_instances += needed
        if total_instances > problem.instance_cap:
            raise AllocationError(
                f"greedy allocation needs {total_instances} instances, cap is "
                f"{problem.instance_cap}"
            )
        option_by_name = {option.type_name: option for option in problem.options}
        cost = sum(counts[name] * option_by_name[name].cost_per_hour for name in counts)
        capacities: Dict[int, float] = {}
        for name, count in counts.items():
            option = option_by_name[name]
            capacities[option.acceleration_group] = (
                capacities.get(option.acceleration_group, 0.0) + count * option.capacity
            )
        return AllocationPlan(
            counts=counts,
            total_cost=cost,
            feasible=True,
            group_capacities=capacities,
            solver="greedy",
        )


class OverProvisioningAllocator:
    """Baseline: size every group for a fixed multiple of its peak demand.

    This models the "static and not dynamic" system the paper contrasts with
    (Section VI-B3): capacity is provisioned once for the worst case instead
    of following the predicted workload.
    """

    def __init__(self, *, headroom: float = 2.0) -> None:
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {headroom}")
        self.headroom = headroom
        self._inner = GreedyAllocator()

    def allocate(self, problem: AllocationProblem) -> AllocationPlan:
        inflated = AllocationProblem(
            options=problem.options,
            group_workloads={
                group: int(math.ceil(workload * self.headroom))
                for group, workload in problem.group_workloads.items()
            },
            instance_cap=problem.instance_cap,
            strict_demand=problem.strict_demand,
        )
        plan = self._inner.allocate(inflated)
        return AllocationPlan(
            counts=plan.counts,
            total_cost=plan.total_cost,
            feasible=plan.feasible,
            group_capacities=plan.group_capacities,
            solver=f"overprovision-{self.headroom:g}x",
        )
