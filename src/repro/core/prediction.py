"""Workload prediction by nearest-historical-slot search (Section IV-B).

Given the current time slot ``t_h``, the predictor computes the knowledge base
``P = {p_k}`` of edit distances between ``t_h`` and every historical slot
``t_i ∈ T`` and approximates the expected workload of the next period by the
slot at minimum distance.

Two strategies are provided:

* ``"nearest"`` — the paper's literal formulation: the prediction *is* the
  closest historical slot ``t_k``.  Because ``t_k`` comes from history,
  "dramatically growing loads are only ever matched to the largest load seen
  in the near history", which makes allocation conservative (Section IV-B2).
* ``"successor"`` — the prediction is the slot that *followed* the closest
  match in history (``t_{k+1}``), i.e. classic nearest-neighbour time-series
  forecasting.  This is the natural reading of "predicts the next time slot"
  and is offered for the ablation study; when the closest match is the last
  slot of the history the strategy falls back to the match itself.

Prediction accuracy (the paper's headline 87.5 %) is measured as
``1 - normalised edit distance`` between the predicted and the realised slot,
averaged over the evaluation set; see :func:`prediction_accuracy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.distance import SlotDistanceIndex, normalized_slot_distance
from repro.core.timeslots import TimeSlot, TimeSlotHistory


@dataclass(frozen=True)
class PredictionOutcome:
    """The result of one prediction."""

    predicted_slot: TimeSlot
    matched_index: int
    distance: int
    distances: Dict[int, int] = field(default_factory=dict)

    def predicted_workloads(self, groups: Optional[Sequence[int]] = None) -> Dict[int, int]:
        """Per-group predicted workloads ``W_{a_n}``."""
        return self.predicted_slot.workload_vector(groups)

    def predicted_total(self) -> int:
        """Predicted total workload ``W``."""
        return self.predicted_slot.total_workload()


class WorkloadPredictor:
    """Edit-distance nearest-slot workload predictor."""

    STRATEGIES = ("nearest", "successor")

    def __init__(
        self,
        history: Optional[TimeSlotHistory] = None,
        *,
        strategy: str = "nearest",
        min_history: int = 2,
        exclude_current: bool = True,
    ) -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self.STRATEGIES}, got {strategy!r}"
            )
        if min_history < 1:
            raise ValueError(f"min_history must be >= 1, got {min_history}")
        self.history = history if history is not None else TimeSlotHistory()
        self.strategy = strategy
        self.min_history = min_history
        # When the slot being predicted *from* is already the newest entry of
        # the history (the normal deployment situation: the just-finished slot
        # was logged before the control loop runs), it would trivially match
        # itself at distance zero and the model would degenerate to last-value
        # prediction.  ``exclude_current`` removes that entry from the
        # knowledge base for the duration of the query.
        self.exclude_current = exclude_current
        self._index = SlotDistanceIndex()
        self._indexed_history = self.history

    def observe(self, slot: TimeSlot) -> None:
        """Append a newly completed slot to the history."""
        self.history.append(slot)

    def _synced_index(self) -> SlotDistanceIndex:
        """The distance index, caught up with the current history.

        The history normally only grows, so new slots are appended to the
        index incrementally; if the history object was swapped out or shrank,
        the index is rebuilt from scratch.
        """
        if self._indexed_history is not self.history or len(self._index) > len(self.history):
            self._index = SlotDistanceIndex()
            self._indexed_history = self.history
        for position in range(len(self._index), len(self.history)):
            self._index.add(self.history[position])
        return self._index

    def required_history(self, current_in_history: bool = True) -> int:
        """Slots the history must hold before :meth:`predict` can run.

        When the query slot is itself the newest history entry (the normal
        deployment situation) and ``exclude_current`` is on, one extra slot is
        needed because the query slot is removed from the knowledge base.
        """
        extra = 1 if (current_in_history and self.exclude_current) else 0
        return self.min_history + extra

    def knowledge_base(
        self, current: TimeSlot, *, exclude_index: Optional[int] = None
    ) -> Dict[int, int]:
        """``P``: edit distance from ``current`` to every historical slot.

        The per-slot edit distances are computed in one vectorised batch over
        the whole history (see :class:`~repro.core.distance.SlotDistanceIndex`)
        rather than a Python loop — this runs every provisioning period.
        """
        batch = self._synced_index().distances_from(current)
        return {
            index: int(distance)
            for index, distance in enumerate(batch)
            if exclude_index is None or index != exclude_index
        }

    def predict(
        self, current: TimeSlot, *, exclude_index: Optional[int] = None
    ) -> PredictionOutcome:
        """Predict the workload of the next period given the current slot.

        Parameters
        ----------
        current:
            The slot describing the current (just finished) period.
        exclude_index:
            Optionally exclude one historical index from matching; the
            cross-validation harness uses this to keep a held-out slot from
            matching itself.

        Raises
        ------
        ValueError
            If the history holds fewer than ``min_history`` slots (the model
            "requires a bootstrap time before producing high accuracy
            results", Section VI-C2).
        """
        if (
            exclude_index is None
            and self.exclude_current
            and len(self.history) > 1
            and self.history[len(self.history) - 1] is current
        ):
            exclude_index = len(self.history) - 1
        usable = len(self.history) - (1 if exclude_index is not None else 0)
        if usable < self.min_history:
            raise ValueError(
                f"history has {usable} usable slots; at least {self.min_history} required"
            )
        distances = self.knowledge_base(current, exclude_index=exclude_index)
        matched_index = min(distances, key=lambda index: (distances[index], index))
        distance = distances[matched_index]
        if self.strategy == "successor" and matched_index + 1 < len(self.history) and (
            exclude_index is None or matched_index + 1 != exclude_index
        ):
            predicted = self.history[matched_index + 1]
        else:
            predicted = self.history[matched_index]
        return PredictionOutcome(
            predicted_slot=predicted,
            matched_index=matched_index,
            distance=distance,
            distances=distances,
        )

    def predict_next_workloads(
        self, current: TimeSlot, groups: Optional[Sequence[int]] = None
    ) -> Dict[int, int]:
        """Convenience wrapper returning only the per-group workload vector."""
        return self.predict(current).predicted_workloads(groups)


def prediction_accuracy(predicted: TimeSlot, actual: TimeSlot) -> float:
    """Accuracy of one prediction of the per-group *number of users*.

    Fig. 10a of the paper reports the "accuracy of the prediction model to
    estimate the number of users in each acceleration group", so the score
    compares the predicted and realised workload counts per group:

        accuracy = 1 - Σ_n |W̃_{a_n} - W_{a_n}| / Σ_n max(W̃_{a_n}, W_{a_n})

    which is 1.0 when every group's user count is predicted exactly and 0.0
    when the prediction shares no volume with the realised workload.  Use
    :func:`assignment_accuracy` for the stricter user-identity-based score.
    """
    groups = sorted(set(predicted.group_ids) | set(actual.group_ids))
    absolute_error = 0.0
    normaliser = 0.0
    for group in groups:
        predicted_count = predicted.workload(group)
        actual_count = actual.workload(group)
        absolute_error += abs(predicted_count - actual_count)
        normaliser += max(predicted_count, actual_count)
    if normaliser == 0:
        return 1.0
    return max(0.0, 1.0 - absolute_error / normaliser)


def assignment_accuracy(predicted: TimeSlot, actual: TimeSlot) -> float:
    """User-identity accuracy: ``1 - normalised edit distance`` in [0, 1].

    This is the stricter score that also penalises predicting the right
    *count* with the wrong *users*; it is the same normalised edit distance
    the predictor minimises when matching slots.
    """
    return 1.0 - normalized_slot_distance(predicted, actual)


# ---------------------------------------------------------------------------
# Baseline predictors used by the ablation benchmarks
# ---------------------------------------------------------------------------


class LastValuePredictor:
    """Naive baseline: tomorrow looks exactly like today."""

    def __init__(self, history: Optional[TimeSlotHistory] = None) -> None:
        self.history = history if history is not None else TimeSlotHistory()

    def observe(self, slot: TimeSlot) -> None:
        self.history.append(slot)

    def predict(self, current: TimeSlot, **_: object) -> PredictionOutcome:
        return PredictionOutcome(predicted_slot=current, matched_index=-1, distance=0)


class MeanWorkloadPredictor:
    """Naive baseline: predict the historical mean per-group workload.

    User identities are discarded; the predicted slot is built from rounded
    mean counts, so the edit distance against the realised slot reflects only
    the workload magnitude.
    """

    def __init__(self, history: Optional[TimeSlotHistory] = None) -> None:
        self.history = history if history is not None else TimeSlotHistory()

    def observe(self, slot: TimeSlot) -> None:
        self.history.append(slot)

    def predict(self, current: TimeSlot, **_: object) -> PredictionOutcome:
        if len(self.history) == 0:
            return PredictionOutcome(predicted_slot=current, matched_index=-1, distance=0)
        groups = sorted(set(self.history.group_ids()) | set(current.group_ids))
        # One slots × groups count matrix, reduced along the slot axis in a
        # single vectorised pass (np.rint rounds half-to-even like round()).
        counts = np.asarray(
            [[slot.workload(group) for group in groups] for slot in self.history],
            dtype=float,
        )
        rounded = np.rint(counts.mean(axis=0)).astype(int)
        means: Dict[int, int] = dict(zip(groups, (int(value) for value in rounded)))
        predicted = TimeSlot.from_counts(index=current.index, counts=means)
        return PredictionOutcome(predicted_slot=predicted, matched_index=-1, distance=0)
