"""Time slots and slot history.

The adaptive model works on a set of time slots ``T = {t_i : 1 <= i <= H}``
of equal length (Section IV-A).  Each slot consists of a set of acceleration
groups ``A = {a_n : 1 <= n <= N}``; each group holds the (possibly empty) set
of users that required that level of acceleration during the slot.  The
workload of group ``a_n`` in a slot, ``W_{a_n}``, is the number of such users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set

from repro.simulation.clock import MILLISECONDS_PER_HOUR
from repro.workload.traces import TraceLog


@dataclass(frozen=True)
class TimeSlot:
    """One time slot: per-acceleration-group user sets.

    Attributes
    ----------
    index:
        Position of the slot in its history (0-based).
    groups:
        Mapping from acceleration group id to the frozen set of user ids that
        offloaded with that group during the slot.  Groups with no users map
        to an empty set (the paper's ``a_n = ∅`` case).
    """

    index: int
    groups: Mapping[int, FrozenSet[int]]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"slot index must be >= 0, got {self.index}")
        frozen = {int(group): frozenset(users) for group, users in self.groups.items()}
        object.__setattr__(self, "groups", frozen)

    @classmethod
    def from_user_sets(cls, index: int, groups: Mapping[int, Iterable[int]]) -> "TimeSlot":
        """Build a slot from any mapping of group -> iterable of user ids."""
        return cls(index=index, groups={g: frozenset(users) for g, users in groups.items()})

    @classmethod
    def from_counts(cls, index: int, counts: Mapping[int, int]) -> "TimeSlot":
        """Build a slot from per-group user *counts* only.

        When user identities are not available (e.g. aggregate logs), synthetic
        user ids are generated per group; the edit distance then degenerates to
        the absolute difference of counts, which is the intended behaviour.
        """
        groups: Dict[int, FrozenSet[int]] = {}
        for group, count in counts.items():
            if count < 0:
                raise ValueError(f"count for group {group} must be >= 0, got {count}")
            groups[int(group)] = frozenset(range(int(count)))
        return cls(index=index, groups=groups)

    @property
    def group_ids(self) -> List[int]:
        """Sorted acceleration group ids present in the slot."""
        return sorted(self.groups)

    def users_in_group(self, group: int) -> FrozenSet[int]:
        """Users assigned to ``group`` during the slot (empty if absent)."""
        return self.groups.get(group, frozenset())

    def workload(self, group: int) -> int:
        """``W_{a_n}``: number of users requiring acceleration ``group``."""
        return len(self.users_in_group(group))

    def workload_vector(self, groups: Optional[Sequence[int]] = None) -> Dict[int, int]:
        """Per-group workloads as a plain dict, over ``groups`` or all present."""
        group_ids = list(groups) if groups is not None else self.group_ids
        return {group: self.workload(group) for group in group_ids}

    def total_workload(self) -> int:
        """``W = Σ W_{a_i}``: total number of users in the slot."""
        return sum(len(users) for users in self.groups.values())

    def all_users(self) -> Set[int]:
        """Union of users across all groups."""
        users: Set[int] = set()
        for group_users in self.groups.values():
            users.update(group_users)
        return users

    def is_empty(self) -> bool:
        """Whether no user offloaded during the slot."""
        return self.total_workload() == 0


class TimeSlotHistory:
    """The ordered history ``T`` of time slots available to the model."""

    def __init__(
        self,
        slots: Optional[Iterable[TimeSlot]] = None,
        *,
        slot_length_ms: float = MILLISECONDS_PER_HOUR,
    ) -> None:
        if slot_length_ms <= 0:
            raise ValueError(f"slot_length_ms must be positive, got {slot_length_ms}")
        self.slot_length_ms = slot_length_ms
        self._slots: List[TimeSlot] = list(slots) if slots else []

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[TimeSlot]:
        return iter(self._slots)

    def __getitem__(self, index: int) -> TimeSlot:
        return self._slots[index]

    @property
    def slots(self) -> List[TimeSlot]:
        return list(self._slots)

    def append(self, slot: TimeSlot) -> None:
        """Append the newest slot to the history."""
        self._slots.append(slot)

    def append_user_sets(self, groups: Mapping[int, Iterable[int]]) -> TimeSlot:
        """Create a slot with the next index from per-group user sets and append it."""
        slot = TimeSlot.from_user_sets(len(self._slots), groups)
        self.append(slot)
        return slot

    def latest(self) -> TimeSlot:
        """The most recent slot."""
        if not self._slots:
            raise ValueError("history is empty")
        return self._slots[-1]

    def group_ids(self) -> List[int]:
        """All acceleration groups seen anywhere in the history."""
        groups: Set[int] = set()
        for slot in self._slots:
            groups.update(slot.group_ids)
        return sorted(groups)

    def truncate(self, keep_last: int) -> "TimeSlotHistory":
        """A new history containing only the ``keep_last`` most recent slots."""
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        return TimeSlotHistory(self._slots[-keep_last:] if keep_last else [],
                               slot_length_ms=self.slot_length_ms)

    @classmethod
    def from_trace_log(
        cls,
        log: TraceLog,
        *,
        slot_length_ms: float = MILLISECONDS_PER_HOUR,
        groups: Optional[Sequence[int]] = None,
        start_ms: Optional[float] = None,
        end_ms: Optional[float] = None,
    ) -> "TimeSlotHistory":
        """Build the history from a request trace log (the system's MySQL logs)."""
        raw_slots = log.slot_workloads(
            slot_length_ms, groups=groups, start_ms=start_ms, end_ms=end_ms
        )
        history = cls(slot_length_ms=slot_length_ms)
        for raw in raw_slots:
            history.append_user_sets(raw)
        return history
