"""Code Acceleration as a Service (CaaS) pricing model.

Section VII-4 of the paper argues that controlling the level of code execution
"opens new opportunities to monetize software": a user can buy a higher
acceleration level for an application instead of buying a faster device.  This
module provides the economic model needed to reason about that:

* :class:`AccelerationPlan` — a subscription tier: an acceleration group and
  its monthly price per user;
* :class:`CaaSPricingModel` — maps per-group subscriber counts to revenue,
  pairs them with the provisioning cost computed by the allocation model, and
  reports the margin;
* :func:`break_even_subscribers` — how many subscribers a tier needs before
  its revenue covers the instances it requires.

The model is intentionally simple (flat per-tier monthly prices, the paper's
hourly instance billing) but exercises the real allocator, so the provisioning
cost side is exactly the Section IV-C optimisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from repro.core.allocation import (
    AllocationError,
    AllocationPlan,
    AllocationProblem,
    IlpAllocator,
    InstanceOption,
)

#: Hours in a billing month, used to convert hourly instance prices.
HOURS_PER_MONTH = 24 * 30


@dataclass(frozen=True)
class AccelerationPlan:
    """One subscription tier of the CaaS offering."""

    name: str
    acceleration_group: int
    monthly_price_per_user: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan name must be non-empty")
        if self.acceleration_group < 0:
            raise ValueError(
                f"acceleration_group must be >= 0, got {self.acceleration_group}"
            )
        if self.monthly_price_per_user < 0:
            raise ValueError(
                f"monthly_price_per_user must be >= 0, got {self.monthly_price_per_user}"
            )


@dataclass(frozen=True)
class CaaSReport:
    """Revenue/cost breakdown for one subscriber mix."""

    subscribers: Mapping[int, int]
    monthly_revenue: float
    monthly_provisioning_cost: float
    plan: AllocationPlan

    def __post_init__(self) -> None:
        object.__setattr__(self, "subscribers", dict(self.subscribers))

    @property
    def monthly_margin(self) -> float:
        """Revenue minus provisioning cost."""
        return self.monthly_revenue - self.monthly_provisioning_cost

    @property
    def is_profitable(self) -> bool:
        return self.monthly_margin > 0


class CaaSPricingModel:
    """Economics of selling acceleration levels as subscription tiers."""

    def __init__(
        self,
        plans: Sequence[AccelerationPlan],
        options: Sequence[InstanceOption],
        *,
        instance_cap: int = 20,
        allocator: Optional[IlpAllocator] = None,
    ) -> None:
        if not plans:
            raise ValueError("at least one acceleration plan is required")
        groups = [plan.acceleration_group for plan in plans]
        if len(set(groups)) != len(groups):
            raise ValueError("each acceleration group may have at most one plan")
        self.plans = {plan.acceleration_group: plan for plan in plans}
        self.options = tuple(options)
        self.instance_cap = instance_cap
        self.allocator = allocator if allocator is not None else IlpAllocator()

    def plan_for_group(self, group: int) -> AccelerationPlan:
        """The subscription plan sold for ``group``."""
        try:
            return self.plans[group]
        except KeyError:
            raise KeyError(f"no plan covers acceleration group {group}") from None

    def monthly_revenue(self, subscribers: Mapping[int, int]) -> float:
        """Total subscription revenue for a per-group subscriber count."""
        revenue = 0.0
        for group, count in subscribers.items():
            if count < 0:
                raise ValueError(f"subscriber count for group {group} must be >= 0")
            revenue += self.plan_for_group(group).monthly_price_per_user * count
        return revenue

    def provisioning_plan(self, concurrent_users: Mapping[int, int]) -> AllocationPlan:
        """Cost-optimal instance mix for the peak concurrent users per group."""
        problem = AllocationProblem(
            options=self.options,
            group_workloads=dict(concurrent_users),
            instance_cap=self.instance_cap,
        )
        return self.allocator.allocate(problem)

    def monthly_report(
        self,
        subscribers: Mapping[int, int],
        *,
        peak_concurrency_fraction: float = 0.2,
    ) -> CaaSReport:
        """Revenue, provisioning cost and margin for a subscriber mix.

        ``peak_concurrency_fraction`` converts subscriber counts into the peak
        number of simultaneously active users the back-end must be sized for
        (not every subscriber offloads at once).
        """
        if not 0 < peak_concurrency_fraction <= 1:
            raise ValueError(
                f"peak_concurrency_fraction must be in (0, 1], got {peak_concurrency_fraction}"
            )
        concurrent = {
            group: int(math.ceil(count * peak_concurrency_fraction))
            for group, count in subscribers.items()
        }
        plan = self.provisioning_plan(concurrent)
        return CaaSReport(
            subscribers=subscribers,
            monthly_revenue=self.monthly_revenue(subscribers),
            monthly_provisioning_cost=plan.total_cost * HOURS_PER_MONTH,
            plan=plan,
        )

    def break_even_subscribers(
        self,
        group: int,
        *,
        peak_concurrency_fraction: float = 0.2,
        max_subscribers: int = 5000,
    ) -> Optional[int]:
        """Smallest subscriber count at which a tier becomes profitable.

        Returns ``None`` when the tier cannot break even within
        ``max_subscribers`` (or within the instance cap).
        """
        for count in range(1, max_subscribers + 1):
            try:
                report = self.monthly_report(
                    {group: count}, peak_concurrency_fraction=peak_concurrency_fraction
                )
            except AllocationError:
                return None
            if report.is_profitable:
                return count
        return None
