"""The paper's primary contribution: the adaptive model for code acceleration.

The model has two halves (Section IV of the paper):

* **Workload prediction** (:mod:`repro.core.prediction`) — the request history
  is sliced into equal-length time slots; each slot records, per acceleration
  group, the set of users that offloaded during the slot.  Given the current
  slot, the predictor finds the historical slot at minimum *edit distance*
  (:mod:`repro.core.distance`) and uses it to approximate the workload of the
  next period.
* **Dynamic resource allocation** (:mod:`repro.core.allocation`) — given the
  predicted per-group workload, an integer linear program chooses the cheapest
  combination of instance types whose benchmarked capacities cover the demand
  of every acceleration group, subject to the cloud account's instance cap.

:mod:`repro.core.acceleration` implements the performance-based
characterization that turns a catalog of instance types into acceleration
groups (Section IV-C1 and VI-A), and :mod:`repro.core.model` combines the
pieces into the :class:`~repro.core.model.AdaptiveModel` that the
SDN-accelerator invokes at the end of each provisioning hour.
"""

from repro.core.acceleration import (
    AccelerationGroup,
    AccelerationLevelCharacterization,
    characterize_instances,
)
from repro.core.allocation import (
    AllocationPlan,
    AllocationProblem,
    GreedyAllocator,
    IlpAllocator,
    InstanceOption,
)
from repro.core.distance import (
    group_edit_distance,
    normalized_slot_distance,
    slot_edit_distance,
)
from repro.core.model import AdaptiveModel, ModelDecision
from repro.core.prediction import (
    PredictionOutcome,
    WorkloadPredictor,
    assignment_accuracy,
    prediction_accuracy,
)
from repro.core.pricing import AccelerationPlan, CaaSPricingModel, CaaSReport
from repro.core.timeslots import TimeSlot, TimeSlotHistory

__all__ = [
    "AccelerationGroup",
    "AccelerationLevelCharacterization",
    "AccelerationPlan",
    "AdaptiveModel",
    "AllocationPlan",
    "AllocationProblem",
    "CaaSPricingModel",
    "CaaSReport",
    "GreedyAllocator",
    "IlpAllocator",
    "InstanceOption",
    "ModelDecision",
    "PredictionOutcome",
    "TimeSlot",
    "TimeSlotHistory",
    "WorkloadPredictor",
    "assignment_accuracy",
    "characterize_instances",
    "group_edit_distance",
    "normalized_slot_distance",
    "prediction_accuracy",
    "slot_edit_distance",
]
