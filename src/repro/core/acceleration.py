"""Acceleration groups and performance-based server characterization.

The paper abstracts the cloud's computational resources into *acceleration
groups*: "the model encapsulates the servers of the cloud into acceleration
groups.  Each a_n is mapped to a set of servers that provide a specific level
of code acceleration" (Section IV-A).  The grouping is determined empirically
(Section VI-A): each server type is stressed with a growing number of
concurrent users, the degradation of its response time is measured, and
servers with the same capacity to keep the response time under the operator's
minimum acceleration level (e.g. 500 ms) land in the same group
(Section IV-C1).

:func:`characterize_instances` reproduces that procedure on top of the
calibrated performance profiles of the instance catalog (or measured response
curves), and :class:`AccelerationLevelCharacterization` is its result: the
ordered set of groups, the capacity of every type and the speed-up each group
offers relative to the slowest one (the Fig. 5 ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AccelerationGroup:
    """One acceleration group ``a_n``: a level and its member instance types."""

    level: int
    instance_types: Tuple[str, ...]
    capacity: float
    speed_factor: float

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        if not self.instance_types:
            raise ValueError("an acceleration group needs at least one instance type")
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {self.speed_factor}")
        object.__setattr__(self, "instance_types", tuple(self.instance_types))


@dataclass
class AccelerationLevelCharacterization:
    """The outcome of characterising a catalog into acceleration groups."""

    groups: List[AccelerationGroup]
    work_units: float
    response_threshold_ms: float
    capacities: Dict[str, float] = field(default_factory=dict)

    @property
    def levels(self) -> List[int]:
        return [group.level for group in self.groups]

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def group_for_type(self, type_name: str) -> AccelerationGroup:
        """The group to which ``type_name`` was assigned."""
        for group in self.groups:
            if type_name in group.instance_types:
                return group
        raise KeyError(f"instance type {type_name!r} was not characterised")

    def level_for_type(self, type_name: str) -> int:
        return self.group_for_type(type_name).level

    def acceleration_ratio(self, higher_level: int, lower_level: int) -> float:
        """How much faster ``higher_level`` executes a task than ``lower_level``.

        These are the Fig. 5 ratios (≈1.25× between levels 2 and 1, ≈1.73×
        between 3 and 1, ≈1.36× between 3 and 2).
        """
        by_level = {group.level: group for group in self.groups}
        if higher_level not in by_level or lower_level not in by_level:
            raise KeyError(
                f"levels {higher_level} and {lower_level} must both be characterised"
            )
        return by_level[higher_level].speed_factor / by_level[lower_level].speed_factor

    def as_level_map(self) -> Dict[str, int]:
        """Instance type name -> assigned acceleration level."""
        mapping: Dict[str, int] = {}
        for group in self.groups:
            for type_name in group.instance_types:
                mapping[type_name] = group.level
        return mapping


def characterize_instances(
    catalog,
    *,
    work_units: float = 300.0,
    response_threshold_ms: float = 500.0,
    capacity_tolerance: float = 0.25,
    measured_capacities: Optional[Mapping[str, float]] = None,
    measured_speed_factors: Optional[Mapping[str, float]] = None,
) -> AccelerationLevelCharacterization:
    """Classify the catalog's instance types into acceleration groups.

    The procedure follows Section IV-C1 of the paper:

    1. compute (or take as measured) every type's capacity — the number of
       concurrent users it can serve while keeping the response time of a
       ``work_units`` task under ``response_threshold_ms``;
    2. sort the types in ascending order of capacity;
    3. create one group per distinct capacity, merging types whose capacities
       differ by less than ``capacity_tolerance`` (relative) — "instances with
       the same capacity are assigned to the same group".

    The resulting groups are numbered from 0 (lowest capacity) upward.  The
    group's ``speed_factor`` (used for the Fig. 5 ratios) is the mean
    single-request speed of its members.

    Parameters
    ----------
    catalog:
        An :class:`~repro.cloud.catalog.InstanceCatalog` (or any iterable of
        objects with ``name``, ``profile.speed_factor`` and a
        ``profile.capacity_under_threshold`` method).
    measured_capacities / measured_speed_factors:
        Optional measured values (e.g. from running the simulated benchmark of
        :mod:`repro.analysis.characterization`); when given they override the
        analytic profile-derived numbers.
    """
    if capacity_tolerance < 0:
        raise ValueError(f"capacity_tolerance must be >= 0, got {capacity_tolerance}")

    capacities: Dict[str, float] = {}
    speeds: Dict[str, float] = {}
    for instance_type in catalog:
        name = instance_type.name
        if measured_capacities is not None and name in measured_capacities:
            capacities[name] = float(measured_capacities[name])
        else:
            capacities[name] = float(
                instance_type.profile.capacity_under_threshold(
                    work_units, response_threshold_ms
                )
            )
        if measured_speed_factors is not None and name in measured_speed_factors:
            speeds[name] = float(measured_speed_factors[name])
        else:
            speeds[name] = float(instance_type.profile.speed_factor)

    # Sort ascending by capacity, then by speed to break ties deterministically.
    ordered = sorted(capacities, key=lambda name: (capacities[name], speeds[name], name))

    groups: List[AccelerationGroup] = []
    current_members: List[str] = []
    current_capacity = None
    level = 0
    for name in ordered:
        capacity = capacities[name]
        if current_capacity is None:
            current_members = [name]
            current_capacity = capacity
            continue
        reference = max(current_capacity, 1e-9)
        if abs(capacity - current_capacity) / reference <= capacity_tolerance:
            current_members.append(name)
            # Track the running mean capacity of the group so a slow drift of
            # similar capacities does not chain into one giant group.
            current_capacity = float(
                np.mean([capacities[member] for member in current_members])
            )
        else:
            groups.append(
                _build_group(level, current_members, capacities, speeds)
            )
            level += 1
            current_members = [name]
            current_capacity = capacity
    if current_members:
        groups.append(_build_group(level, current_members, capacities, speeds))

    return AccelerationLevelCharacterization(
        groups=groups,
        work_units=work_units,
        response_threshold_ms=response_threshold_ms,
        capacities=capacities,
    )


def _build_group(
    level: int,
    members: Sequence[str],
    capacities: Mapping[str, float],
    speeds: Mapping[str, float],
) -> AccelerationGroup:
    return AccelerationGroup(
        level=level,
        instance_types=tuple(sorted(members)),
        capacity=float(np.mean([capacities[name] for name in members])),
        speed_factor=float(np.mean([speeds[name] for name in members])),
    )
