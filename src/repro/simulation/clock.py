"""Simulation clock.

The clock is a thin wrapper around a float number of simulated milliseconds.
It exists as its own object (rather than a bare float threaded through the
code) so that components can hold a reference to the *live* clock owned by the
engine and always observe the current simulation time.
"""

from __future__ import annotations

MILLISECONDS_PER_SECOND = 1000.0
MILLISECONDS_PER_MINUTE = 60.0 * MILLISECONDS_PER_SECOND
MILLISECONDS_PER_HOUR = 60.0 * MILLISECONDS_PER_MINUTE


class SimulationClock:
    """A monotonically advancing millisecond clock.

    Only the simulation engine advances the clock; all other components treat
    it as read-only.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ms}")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now_ms

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds."""
        return self._now_ms / MILLISECONDS_PER_SECOND

    @property
    def now_minutes(self) -> float:
        """Current simulation time in minutes."""
        return self._now_ms / MILLISECONDS_PER_MINUTE

    @property
    def now_hours(self) -> float:
        """Current simulation time in hours."""
        return self._now_ms / MILLISECONDS_PER_HOUR

    def advance_to(self, time_ms: float) -> None:
        """Advance the clock to ``time_ms``.

        Raises
        ------
        ValueError
            If ``time_ms`` is earlier than the current time.  The engine only
            ever pops events in non-decreasing time order, so this indicates a
            scheduling bug.
        """
        if time_ms < self._now_ms:
            raise ValueError(
                f"cannot move clock backwards: now={self._now_ms} requested={time_ms}"
            )
        self._now_ms = float(time_ms)

    def __repr__(self) -> str:
        return f"SimulationClock(now_ms={self._now_ms:.3f})"


def hours_to_ms(hours: float) -> float:
    """Convert hours to simulated milliseconds."""
    return hours * MILLISECONDS_PER_HOUR


def minutes_to_ms(minutes: float) -> float:
    """Convert minutes to simulated milliseconds."""
    return minutes * MILLISECONDS_PER_MINUTE


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to simulated milliseconds."""
    return seconds * MILLISECONDS_PER_SECOND


def ms_to_hours(ms: float) -> float:
    """Convert simulated milliseconds to hours."""
    return ms / MILLISECONDS_PER_HOUR
