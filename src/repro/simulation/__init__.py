"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event simulation kernel on
which the rest of the reproduction is built: a simulation clock, an event
queue, process scheduling helpers, seeded random-stream management and online
statistics collectors.

The substrate replaces the paper's physical Amazon EC2 testbed.  Everything in
the higher layers (cloud instances, network channels, the SDN-accelerator,
mobile devices) is expressed as events scheduled on a single
:class:`~repro.simulation.engine.SimulationEngine`.

Design goals
------------
* **Determinism** — all randomness is drawn from named sub-streams derived from
  a single seed via :class:`~repro.simulation.randomness.RandomStreams`, so a
  simulation run is a pure function of its configuration.
* **Millisecond clock** — the paper reports all latencies in milliseconds, so
  the simulated clock counts milliseconds as floats.
* **Small, explicit API** — callbacks and plain data classes; no implicit
  global state.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.queues import FifoQueue, ProcessorSharingServer, ServerBusyError
from repro.simulation.randomness import RandomStreams
from repro.simulation.stats import OnlineStatistics, TimeSeries, percentile_summary

__all__ = [
    "Event",
    "FifoQueue",
    "OnlineStatistics",
    "ProcessorSharingServer",
    "RandomStreams",
    "ServerBusyError",
    "SimulationClock",
    "SimulationEngine",
    "TimeSeries",
    "percentile_summary",
]
