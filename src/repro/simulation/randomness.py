"""Deterministic random-stream management.

Every stochastic component of the simulation (arrival processes, task
selection, service-time jitter, network latency, promotion decisions, ...)
draws from its own named stream.  Streams are derived from a single root seed
with :func:`numpy.random.SeedSequence.spawn`-style child seeding keyed by the
stream name, so:

* two runs with the same root seed produce identical results, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are independent by name, not by draw order).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed from which all named streams are derived."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator instance within one
        :class:`RandomStreams`, so repeated calls share state (as a single
        logical stream should).
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._child_seed(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent child :class:`RandomStreams` namespace.

        Useful when a sub-component manages its own set of named streams (for
        example, one namespace per simulated mobile device).
        """
        return RandomStreams(self._child_seed(name))

    def _child_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
