"""Online statistics and time-series collection helpers.

Evaluation figures in the paper report means, standard deviations, medians and
interpercentile ranges of response times.  These helpers collect such summary
statistics from simulated observations without storing more than necessary.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np


class OnlineStatistics:
    """Welford-style online mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Incorporate a single observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Incorporate many observations."""
        for value in values:
            self.add(value)

    def extend_array(self, values: "np.ndarray | Sequence[float]") -> None:
        """Incorporate a whole batch of observations in one vectorised step.

        The batch's count/mean/M2 are computed with numpy and folded into the
        accumulator with the same parallel combination rule as :meth:`merge`
        (Chan et al.), so the result is numerically equivalent to calling
        :meth:`add` per value — up to floating-point rounding — at a fraction
        of the cost.  This is the fold used by the batched scenario fast path.
        """
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        count = int(array.size)
        mean = float(array.mean())
        m2 = float(np.sum((array - mean) ** 2))
        if self._count == 0:
            self._count = count
            self._mean = mean
            self._m2 = m2
        else:
            total = self._count + count
            delta = mean - self._mean
            self._mean += delta * count / total
            self._m2 += m2 + delta * delta * self._count * count / total
            self._count = total
        self._minimum = min(self._minimum, float(array.min()))
        self._maximum = max(self._maximum, float(array.max()))

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance of the observations."""
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._m2 / self._count

    @property
    def std(self) -> float:
        """Population standard deviation of the observations."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._minimum

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations recorded")
        return self._maximum

    def merge(self, other: "OnlineStatistics") -> "OnlineStatistics":
        """Return a new accumulator combining both sets of observations."""
        merged = OnlineStatistics()
        if self._count == 0:
            merged._count = other._count
            merged._mean = other._mean
            merged._m2 = other._m2
            merged._minimum = other._minimum
            merged._maximum = other._maximum
            return merged
        if other._count == 0:
            merged._count = self._count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged._minimum = self._minimum
            merged._maximum = self._maximum
            return merged
        count = self._count + other._count
        delta = other._mean - self._mean
        merged._count = count
        merged._mean = self._mean + delta * other._count / count
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / count
        merged._minimum = min(self._minimum, other._minimum)
        merged._maximum = max(self._maximum, other._maximum)
        return merged

    def __repr__(self) -> str:
        if self._count == 0:
            return "OnlineStatistics(empty)"
        return (
            f"OnlineStatistics(count={self._count}, mean={self._mean:.3f}, "
            f"std={self.std:.3f}, min={self._minimum:.3f}, max={self._maximum:.3f})"
        )


@dataclass
class TimeSeries:
    """A simple (time, value) series with convenience reductions."""

    name: str = ""
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        """Append an observation; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} requires non-decreasing times: "
                f"{time} after {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series with ``start <= time < end``.

        Times are non-decreasing by construction (:meth:`add` enforces it),
        so the window is located with two binary searches and sliced — O(log n)
        instead of a full scan per call.
        """
        low = bisect_left(self.times, start)
        high = bisect_left(self.times, end, lo=low)
        selected = TimeSeries(name=self.name)
        selected.times = self.times[low:high]
        selected.values = self.values[low:high]
        return selected

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.mean(self.values))

    def std(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.std(self.values))

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (5.0, 25.0, 50.0, 75.0, 95.0),
) -> Dict[str, float]:
    """Summarise ``values`` into mean, std and the requested percentiles.

    This is the summary used to describe the interpercentile ranges shown in
    Fig. 4 of the paper.
    """
    if len(values) == 0:
        raise ValueError("cannot summarise an empty collection")
    array = np.asarray(values, dtype=float)
    summary: Dict[str, float] = {
        "count": float(array.size),
        "mean": float(array.mean()),
        "std": float(array.std()),
        "min": float(array.min()),
        "max": float(array.max()),
    }
    for percentile in percentiles:
        summary[f"p{percentile:g}"] = float(np.percentile(array, percentile))
    return summary
