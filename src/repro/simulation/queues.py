"""Queueing primitives used by the cloud-instance server model.

Two primitives are provided:

* :class:`FifoQueue` — a bounded FIFO admission queue.  Requests that arrive
  when the queue is full are dropped; the drop counter is what produces the
  success/fail split of Fig. 8c.
* :class:`ProcessorSharingServer` — an egalitarian processor-sharing service
  model.  All admitted jobs share the server's total service rate equally,
  which reproduces the characteristic response-time growth with concurrency of
  Fig. 4: doubling the number of concurrent users roughly doubles the response
  time once the server's parallelism is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


class ServerBusyError(RuntimeError):
    """Raised when a job is submitted to a server that cannot admit it."""


@dataclass
class _Job:
    job_id: int
    remaining_work: float
    submitted_at_ms: float
    on_complete: Callable[[float], None]


class FifoQueue:
    """A bounded FIFO queue with drop accounting."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"queue capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._items: List[object] = []
        self.dropped = 0
        self.accepted = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def offer(self, item: object) -> bool:
        """Add ``item`` if there is room; return whether it was accepted."""
        if self._capacity is not None and len(self._items) >= self._capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.accepted += 1
        return True

    def poll(self) -> Optional[object]:
        """Remove and return the oldest item, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.pop(0)

    def peek(self) -> Optional[object]:
        """Return the oldest item without removing it."""
        if not self._items:
            return None
        return self._items[0]


class ProcessorSharingServer:
    """An egalitarian processor-sharing server driven by a simulation engine.

    The server has a total service rate expressed in *work units per
    millisecond* and a parallelism width.  While the number of in-service jobs
    is at most the parallelism width each job receives the full per-core rate;
    beyond that, the total rate is shared equally among all in-service jobs.

    Completion times are recomputed whenever the job population changes.
    Rescheduling is *lazy*: the pending next-completion event is only
    replaced when the new next completion moves **earlier** than the
    scheduled time.  When it moves later (the common case — every arrival
    beyond the parallelism width slows the jobs in service), the existing
    event is kept; on firing, the handler notices nothing has finished yet
    and re-arms itself at the corrected time.  This trades one guaranteed
    cancel+push per arrival for at most one extra no-op pop per population
    change, which cuts the event-path heap churn substantially while
    preserving the exact processor-sharing trajectory under
    piecewise-constant sharing.
    """

    def __init__(
        self,
        engine,
        *,
        service_rate_per_core: float,
        cores: int,
        max_concurrency: Optional[int] = None,
        name: str = "server",
    ) -> None:
        if service_rate_per_core <= 0:
            raise ValueError(f"service rate must be positive, got {service_rate_per_core}")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self._engine = engine
        self._rate_per_core = float(service_rate_per_core)
        self._cores = int(cores)
        self._max_concurrency = max_concurrency
        self.name = name
        self._jobs: Dict[int, _Job] = {}
        self._next_job_id = 0
        self._last_update_ms = engine.now_ms
        self._completion_event = None
        self.completed_jobs = 0
        self.rejected_jobs = 0
        self.busy_time_ms = 0.0

    @property
    def in_service(self) -> int:
        """Number of jobs currently being served."""
        return len(self._jobs)

    @property
    def cores(self) -> int:
        return self._cores

    @property
    def max_concurrency(self) -> Optional[int]:
        return self._max_concurrency

    def per_job_rate(self, population: Optional[int] = None) -> float:
        """Service rate each job receives for a given population size."""
        population = self.in_service if population is None else population
        if population <= 0:
            return self._rate_per_core
        if population <= self._cores:
            return self._rate_per_core
        return self._rate_per_core * self._cores / population

    def submit(self, work_units: float, on_complete: Callable[[float], None]) -> int:
        """Submit a job of ``work_units`` of work.

        ``on_complete`` is invoked with the job's sojourn time (milliseconds)
        when the job finishes.

        Raises
        ------
        ServerBusyError
            If the server's admission limit is reached.
        """
        if work_units <= 0:
            raise ValueError(f"work_units must be positive, got {work_units}")
        if self._max_concurrency is not None and len(self._jobs) >= self._max_concurrency:
            self.rejected_jobs += 1
            raise ServerBusyError(
                f"server {self.name!r} at max concurrency {self._max_concurrency}"
            )
        self._drain_progress()
        job_id = self._next_job_id
        self._next_job_id += 1
        self._jobs[job_id] = _Job(
            job_id=job_id,
            remaining_work=float(work_units),
            submitted_at_ms=self._engine.now_ms,
            on_complete=on_complete,
        )
        self._reschedule_completion()
        return job_id

    def _drain_progress(self) -> None:
        """Apply service progress accumulated since the last population change."""
        now = self._engine.now_ms
        elapsed = now - self._last_update_ms
        self._last_update_ms = now
        if elapsed <= 0 or not self._jobs:
            return
        rate = self.per_job_rate()
        self.busy_time_ms += elapsed
        for job in self._jobs.values():
            job.remaining_work -= rate * elapsed

    def _reschedule_completion(self) -> None:
        if not self._jobs:
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
            return
        rate = self.per_job_rate()
        next_job = min(self._jobs.values(), key=lambda job: job.remaining_work)
        target_ms = self._engine.now_ms + max(next_job.remaining_work / rate, 0.0)
        event = self._completion_event
        if event is not None and not event.cancelled:
            # Lazy cancellation: an event that fires *no later* than the new
            # completion time can be kept — if it fires early, the handler
            # below finds nothing finished and re-arms at the corrected time.
            if event.time_ms <= target_ms + 1e-9:
                return
            event.cancel()
        self._completion_event = self._engine.schedule_at(
            target_ms, self._complete_next, label=f"{self.name}:complete"
        )

    def _complete_next(self) -> None:
        self._completion_event = None
        self._drain_progress()
        finished = [job for job in self._jobs.values() if job.remaining_work <= 1e-9]
        if not finished and self._jobs:
            rate = self.per_job_rate()
            next_job = min(self._jobs.values(), key=lambda job: job.remaining_work)
            delay = next_job.remaining_work / rate
            if delay > 1e-6:
                # Stale early fire (the population grew after this event was
                # scheduled, slowing every job): re-arm at the corrected time.
                self._completion_event = self._engine.schedule_after(
                    delay, self._complete_next, label=f"{self.name}:complete"
                )
                return
            # Numerical drift can leave the smallest job epsilon short; force
            # completion of the minimum-work job to preserve progress.
            finished = [next_job]
        for job in finished:
            del self._jobs[job.job_id]
            self.completed_jobs += 1
            sojourn = self._engine.now_ms - job.submitted_at_ms
            job.on_complete(sojourn)
        self._reschedule_completion()

    def __repr__(self) -> str:
        return (
            f"ProcessorSharingServer(name={self.name!r}, cores={self._cores}, "
            f"in_service={self.in_service}, completed={self.completed_jobs})"
        )
