"""Discrete-event simulation engine.

The engine owns a priority queue of :class:`Event` objects and the simulation
clock.  Components schedule callbacks at absolute or relative simulated times;
the engine pops events in time order, advances the clock, and invokes the
callbacks.  Callbacks may schedule further events.

The engine is intentionally minimal: there is no co-routine/process machinery,
only callbacks, which keeps the control flow explicit and easy to test.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simulation.clock import SimulationClock


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events fire in ``(time_ms, sequence)`` order so that events scheduled for
    the same instant fire in the order they were scheduled (FIFO tie-break),
    which keeps runs deterministic.  The engine's heap holds plain
    ``(time_ms, sequence, event)`` tuples rather than the events themselves:
    heap sift comparisons then run as C-level tuple comparisons instead of a
    generated Python ``__lt__``, which is worth ~20% of event-path wall time
    on large scenarios.  ``__slots__`` keeps the per-event footprint small —
    large scenarios allocate one event per request hop.
    """

    time_ms: float
    sequence: int
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False
    _owner: "Optional[SimulationEngine]" = field(default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class SimulationEngine:
    """A deterministic discrete-event loop with a millisecond clock."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self.clock = SimulationClock(start_ms)
        self._queue: "list[tuple[float, int, Event]]" = []
        self._sequence = itertools.count()
        # Front-tier sequences: hugely negative but still increasing, so
        # front-scheduled events beat every normally-scheduled event at the
        # same instant while staying FIFO among themselves.
        self._front_sequence = itertools.count(-(2**60))
        self._processed_events = 0
        self._cancelled_pending = 0
        self._cancelled_total = 0
        self._running = False

    @property
    def now_ms(self) -> float:
        """Current simulation time in milliseconds."""
        return self.clock.now_ms

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed_events

    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending

    @property
    def cancelled_events(self) -> int:
        """Number of events ever cancelled while pending.

        Counted exactly once per event: :meth:`Event.cancel` is idempotent,
        so re-cancelling a cancelled event cannot drift this total (or the
        live ``pending_events`` count) — pinned by the engine test suite.
        """
        return self._cancelled_total

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` so the live-event count stays exact."""
        self._cancelled_pending += 1
        self._cancelled_total += 1

    def schedule_at(
        self,
        time_ms: float,
        callback: Callable[[], None],
        label: str = "",
        *,
        front: bool = False,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time_ms``.

        ``front=True`` places the event ahead of every normally-scheduled
        event at the same instant (front events stay FIFO among themselves).
        The scenario runner's arrival pump uses this to schedule request
        submissions lazily while preserving the tie-break order that
        pre-scheduling all submissions up front used to give them.
        """
        if time_ms < self.clock.now_ms:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now_ms} "
                f"requested={time_ms} label={label!r}"
            )
        sequence = next(self._front_sequence) if front else next(self._sequence)
        event = Event(
            time_ms=float(time_ms),
            sequence=sequence,
            callback=callback,
            label=label,
            _owner=self,
        )
        heapq.heappush(self._queue, (event.time_ms, sequence, event))
        return event

    def schedule_after(self, delay_ms: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay_ms`` simulated milliseconds."""
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ms}")
        return self.schedule_at(self.clock.now_ms + delay_ms, callback, label)

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until_ms:
            Stop once the next event would fire strictly after this time.  The
            clock is advanced to ``until_ms`` when the horizon is reached so
            that time-based reporting covers the full interval.  ``None`` runs
            until the queue drains.
        max_events:
            Optional safety limit on the number of events to execute.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0][2]
                if until_ms is not None and event.time_ms > until_ms:
                    break
                heapq.heappop(self._queue)
                event._owner = None  # late cancels must not skew the live count
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self.clock.advance_to(event.time_ms)
                event.callback()
                executed += 1
                self._processed_events += 1
        finally:
            self._running = False
        if until_ms is not None and until_ms > self.clock.now_ms:
            self.clock.advance_to(until_ms)
        return executed

    def __repr__(self) -> str:
        return (
            f"SimulationEngine(now_ms={self.clock.now_ms:.1f}, "
            f"pending={self.pending_events}, processed={self._processed_events})"
        )
