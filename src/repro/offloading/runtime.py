"""Method registry and runtimes for homogeneous offloading.

The paper offloads code at *method level* (assumption (b) of Section IV): a
method annotated as offloadable exists identically on the mobile device and on
the cloud surrogate.  Here that is modelled by a :class:`MethodRegistry` of
named Python callables shared (by construction) between the
:class:`LocalRuntime` (the device) and the :class:`SurrogateRuntime` (the
Dalvik-x86 stand-in): both execute *the same registered functions*, the only
difference being where the invocation's application state lives and how long
the execution is modelled to take.

The surrogate mimics the paper's per-request ``dalvikvm`` process model: each
handled invocation gets a fresh execution context identified by a process id,
so problematic requests can be inspected individually (Section V).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.offloading.state import ApplicationState, deserialize_state, serialize_state


@dataclass(frozen=True)
class OffloadableMethod:
    """One method that may be executed locally or on the surrogate."""

    name: str
    function: Callable[..., Any]
    work_units: float
    payload_hint_bytes: int = 1024

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("method name must be non-empty")
        if not callable(self.function):
            raise TypeError("function must be callable")
        if self.work_units <= 0:
            raise ValueError(f"work_units must be positive, got {self.work_units}")
        if self.payload_hint_bytes < 0:
            raise ValueError(f"payload_hint_bytes must be >= 0, got {self.payload_hint_bytes}")


class MethodRegistry:
    """The set of offloadable methods shared by device and surrogate."""

    def __init__(self) -> None:
        self._methods: Dict[str, OffloadableMethod] = {}

    def __len__(self) -> int:
        return len(self._methods)

    def __contains__(self, name: str) -> bool:
        return name in self._methods

    @property
    def names(self) -> List[str]:
        return sorted(self._methods)

    def register(
        self,
        name: str,
        function: Callable[..., Any],
        *,
        work_units: float,
        payload_hint_bytes: int = 1024,
    ) -> OffloadableMethod:
        """Register a method; re-registering an existing name is an error."""
        if name in self._methods:
            raise ValueError(f"method {name!r} is already registered")
        method = OffloadableMethod(
            name=name,
            function=function,
            work_units=work_units,
            payload_hint_bytes=payload_hint_bytes,
        )
        self._methods[name] = method
        return method

    def offloadable(self, name: str, *, work_units: float, payload_hint_bytes: int = 1024):
        """Decorator form of :meth:`register`.

        >>> registry = MethodRegistry()
        >>> @registry.offloadable("double", work_units=10)
        ... def double(x):
        ...     return 2 * x
        >>> registry.get("double").function(21)
        42
        """

        def decorator(function: Callable[..., Any]) -> Callable[..., Any]:
            self.register(
                name, function, work_units=work_units, payload_hint_bytes=payload_hint_bytes
            )
            return function

        return decorator

    def get(self, name: str) -> OffloadableMethod:
        try:
            return self._methods[name]
        except KeyError:
            raise KeyError(
                f"method {name!r} is not registered; known methods: {self.names}"
            ) from None


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one invocation on either runtime."""

    method_name: str
    value: Any
    where: str
    wall_time_ms: float
    process_id: Optional[int] = None
    payload_bytes: int = 0


class LocalRuntime:
    """Executes registered methods on the device itself."""

    def __init__(self, registry: MethodRegistry) -> None:
        self.registry = registry
        self.executions = 0

    def execute(self, state: ApplicationState) -> ExecutionResult:
        """Run the invocation locally (no serialization round trip needed)."""
        method = self.registry.get(state.method_name)
        started = time.perf_counter()
        value = method.function(*state.args, **state.kwargs)
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        self.executions += 1
        return ExecutionResult(
            method_name=state.method_name,
            value=value,
            where="local",
            wall_time_ms=elapsed_ms,
        )


class SurrogateRuntime:
    """The cloud-side runtime: reconstructs transferred state and executes it.

    This is the reproduction's stand-in for the paper's Dalvik-x86 surrogate:
    the same registered methods as the device (homogeneous model), one fresh
    "process" per handled request, and a log of handled process ids for
    troubleshooting.
    """

    def __init__(self, registry: MethodRegistry, *, instance_type_name: str = "t2.nano") -> None:
        self.registry = registry
        self.instance_type_name = instance_type_name
        self._process_ids = itertools.count(1)
        self.handled_processes: List[int] = []

    def execute_payload(self, payload: bytes) -> ExecutionResult:
        """Reconstruct the application state from ``payload`` and execute it."""
        state = deserialize_state(payload)
        return self.execute(state, payload_bytes=len(payload))

    def execute(self, state: ApplicationState, *, payload_bytes: Optional[int] = None) -> ExecutionResult:
        """Execute an (already reconstructed) invocation in a fresh process."""
        method = self.registry.get(state.method_name)
        process_id = next(self._process_ids)
        if payload_bytes is None:
            payload_bytes = len(serialize_state(state))
        started = time.perf_counter()
        value = method.function(*state.args, **state.kwargs)
        elapsed_ms = 1000.0 * (time.perf_counter() - started)
        self.handled_processes.append(process_id)
        return ExecutionResult(
            method_name=state.method_name,
            value=value,
            where=f"surrogate:{self.instance_type_name}",
            wall_time_ms=elapsed_ms,
            process_id=process_id,
            payload_bytes=payload_bytes,
        )
