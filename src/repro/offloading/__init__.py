"""Homogeneous code-offloading runtime (Fig. 1a of the paper).

The paper's system uses the *homogeneous* offloading model: the mobile device
and the cloud surrogate run identical runtime environments (the authors build
a Dalvik-x86 image), the offloadable code exists on both sides, and what
travels over the network is the serialized *application state* of a method
invocation, which the surrogate reconstructs and executes.

This package is the executable counterpart of that model:

* :mod:`repro.offloading.state` — capture, serialize and reconstruct the
  application state of a method invocation (method name, arguments, app
  metadata), with payload-size accounting;
* :mod:`repro.offloading.runtime` — the method registry (method-level
  offloading granularity, assumption (b) of Section IV), the local runtime and
  the cloud surrogate runtime that executes serialized invocations — the
  stand-in for the paper's Dalvik-x86 instance;
* :mod:`repro.offloading.client` — the client-side component that applies the
  Section II-A decision rule (offload iff the remote path is expected to be
  cheaper), really executes the method locally or remotely, and reports what
  happened.

Everything here really runs the registered Python functions; the simulation
substrate is only used to *estimate* remote execution time for the decision.
"""

from repro.offloading.client import OffloadingClient, OffloadingReport
from repro.offloading.runtime import (
    LocalRuntime,
    MethodRegistry,
    OffloadableMethod,
    SurrogateRuntime,
)
from repro.offloading.state import ApplicationState, deserialize_state, serialize_state

__all__ = [
    "ApplicationState",
    "LocalRuntime",
    "MethodRegistry",
    "OffloadableMethod",
    "OffloadingClient",
    "OffloadingReport",
    "SurrogateRuntime",
    "deserialize_state",
    "serialize_state",
]
