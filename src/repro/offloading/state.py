"""Application state capture and serialization.

In the homogeneous model "the same RE in the mobile and server ... is
necessary to encapsulate the application state (AS) in the mobile, such that
AS can be transferred in the network and reconstructed in the cloud to execute
the task" (Section II-A).  Here the application state of one method invocation
is the method's registered name, its positional/keyword arguments and a small
application-metadata dict; it is serialized to JSON so the payload size the
network model charges for is a real number of bytes.

Only JSON-representable arguments are supported — which is also a realistic
constraint: state that cannot be marshalled cannot be offloaded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple


class StateSerializationError(ValueError):
    """Raised when an invocation's state cannot be marshalled for transfer."""


@dataclass(frozen=True)
class ApplicationState:
    """The transferable state of one offloadable method invocation."""

    method_name: str
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    app_metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.method_name:
            raise ValueError("method_name must be non-empty")
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        object.__setattr__(self, "app_metadata", dict(self.app_metadata))


def serialize_state(state: ApplicationState) -> bytes:
    """Serialize the application state to a compact JSON payload.

    Raises
    ------
    StateSerializationError
        If any argument is not JSON-representable (the state cannot be
        reconstructed by the remote runtime).
    """
    document = {
        "method": state.method_name,
        "args": list(state.args),
        "kwargs": dict(state.kwargs),
        "app": dict(state.app_metadata),
    }
    try:
        return json.dumps(document, separators=(",", ":"), sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise StateSerializationError(
            f"application state of {state.method_name!r} is not serializable: {error}"
        ) from error


def deserialize_state(payload: bytes) -> ApplicationState:
    """Reconstruct the application state from a serialized payload."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StateSerializationError(f"malformed application-state payload: {error}") from error
    for key in ("method", "args", "kwargs", "app"):
        if key not in document:
            raise StateSerializationError(f"application-state payload is missing {key!r}")
    return ApplicationState(
        method_name=document["method"],
        args=tuple(document["args"]),
        kwargs=dict(document["kwargs"]),
        app_metadata=dict(document["app"]),
    )


def payload_size_bytes(state: ApplicationState) -> int:
    """Size of the serialized state — what the network model charges for."""
    return len(serialize_state(state))
