"""Client-side offloading: the Section II-A decision, made executable.

:class:`OffloadingClient` owns the device profile, the shared method registry
and a connection to a surrogate runtime.  For each invocation it

1. estimates the local execution time from the device profile and the method's
   calibrated work,
2. estimates the remote response time from the target instance's performance
   profile, the expected network round trip and the SDN routing overhead,
3. applies the decision rule — offload if and only if the remote path is
   expected to be cheaper (optionally also requiring an energy saving), and
4. really executes the method on the chosen side, returning both the result
   and the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.cloud.catalog import InstanceType
from repro.mobile.device import DeviceProfile
from repro.mobile.energy import EnergyModel
from repro.offloading.runtime import ExecutionResult, LocalRuntime, MethodRegistry, SurrogateRuntime
from repro.offloading.state import ApplicationState, payload_size_bytes, serialize_state


@dataclass(frozen=True)
class OffloadingReport:
    """What happened for one invocation: decision, estimates and real result."""

    state: ApplicationState
    offloaded: bool
    reason: str
    estimated_local_ms: float
    estimated_remote_ms: float
    payload_bytes: int
    execution: ExecutionResult

    @property
    def value(self) -> Any:
        """The method's return value (identical whichever side executed it)."""
        return self.execution.value


class OffloadingClient:
    """Decides where to run each offloadable invocation and really runs it."""

    def __init__(
        self,
        registry: MethodRegistry,
        device: DeviceProfile,
        surrogate: SurrogateRuntime,
        target_instance: InstanceType,
        *,
        expected_rtt_ms: float = 40.0,
        routing_overhead_ms: float = 150.0,
        expected_concurrency: int = 1,
        energy_model: Optional[EnergyModel] = None,
        require_energy_saving: bool = False,
    ) -> None:
        if expected_rtt_ms < 0 or routing_overhead_ms < 0:
            raise ValueError("latency estimates must be >= 0")
        if expected_concurrency < 1:
            raise ValueError(f"expected_concurrency must be >= 1, got {expected_concurrency}")
        self.registry = registry
        self.device = device
        self.local_runtime = LocalRuntime(registry)
        self.surrogate = surrogate
        self.target_instance = target_instance
        self.expected_rtt_ms = expected_rtt_ms
        self.routing_overhead_ms = routing_overhead_ms
        self.expected_concurrency = expected_concurrency
        self.energy_model = energy_model
        self.require_energy_saving = require_energy_saving
        self.offloaded_count = 0
        self.local_count = 0

    # -- estimates -------------------------------------------------------------

    def estimate_local_ms(self, method_name: str) -> float:
        """Expected local execution time from the device profile."""
        method = self.registry.get(method_name)
        return self.device.local_execution_time_ms(method.work_units)

    def estimate_remote_ms(self, method_name: str) -> float:
        """Expected remote response time (cloud + network + routing)."""
        method = self.registry.get(method_name)
        cloud_ms = self.target_instance.profile.service_time_ms(
            method.work_units, self.expected_concurrency
        )
        return cloud_ms + self.expected_rtt_ms + self.routing_overhead_ms

    def _energy_allows_offloading(self, method_name: str, remote_ms: float) -> bool:
        if self.energy_model is None or not self.require_energy_saving:
            return True
        method = self.registry.get(method_name)
        # The energy model works on OffloadableTask-like objects; only the
        # work_units attribute is needed, which OffloadableMethod also has.
        return self.energy_model.offload_energy_joules(remote_ms) < self.energy_model.local_energy_joules(
            self.device, method  # type: ignore[arg-type]
        )

    # -- execution ---------------------------------------------------------------

    def invoke(
        self,
        method_name: str,
        *args: Any,
        app_metadata: Optional[Mapping[str, Any]] = None,
        force: Optional[str] = None,
        **kwargs: Any,
    ) -> OffloadingReport:
        """Execute one offloadable invocation, locally or on the surrogate.

        ``force`` overrides the decision with ``"local"`` or ``"remote"``
        (useful for measurements); otherwise the Section II-A rule applies.
        """
        if force not in (None, "local", "remote"):
            raise ValueError(f"force must be None, 'local' or 'remote', got {force!r}")
        state = ApplicationState(
            method_name=method_name,
            args=args,
            kwargs=kwargs,
            app_metadata=app_metadata or {},
        )
        local_ms = self.estimate_local_ms(method_name)
        remote_ms = self.estimate_remote_ms(method_name)

        if force == "local":
            offload, reason = False, "forced local"
        elif force == "remote":
            offload, reason = True, "forced remote"
        elif remote_ms >= local_ms:
            offload, reason = False, (
                f"local execution expected faster ({local_ms:.0f} ms <= {remote_ms:.0f} ms)"
            )
        elif not self._energy_allows_offloading(method_name, remote_ms):
            offload, reason = False, "offloading would cost more energy than it saves"
        else:
            offload, reason = True, (
                f"remote execution expected faster ({remote_ms:.0f} ms < {local_ms:.0f} ms)"
            )

        if offload:
            payload = serialize_state(state)
            execution = self.surrogate.execute_payload(payload)
            self.offloaded_count += 1
            payload_bytes = len(payload)
        else:
            execution = self.local_runtime.execute(state)
            self.local_count += 1
            payload_bytes = payload_size_bytes(state)

        return OffloadingReport(
            state=state,
            offloaded=offload,
            reason=reason,
            estimated_local_ms=local_ms,
            estimated_remote_ms=remote_ms,
            payload_bytes=payload_bytes,
            execution=execution,
        )
