"""Autoscaling control loop.

At the end of every provisioning period the Workload Predictor and Resource
Allocator of Fig. 3 run: the trace log of the finished period is turned into a
time slot, the adaptive model predicts the workload of the next period, the
ILP picks the cheapest instance mix, and the provisioner adjusts the running
back-end to the plan.

Two controllers are provided:

* :class:`Autoscaler` — the paper's predictive controller driven by the
  :class:`~repro.core.model.AdaptiveModel`.
* :class:`ReactiveAutoscaler` — a prediction-free baseline that provisions for
  the workload just observed (pure reaction), used by the ablation benches to
  quantify the value of prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.cloud.backend import BackendPool
from repro.cloud.provisioner import Provisioner, ProvisioningError
from repro.core.allocation import (
    AllocationError,
    AllocationPlan,
    AllocationProblem,
    IlpAllocator,
    best_effort_plan,
)
from repro.core.model import AdaptiveModel, ModelDecision
from repro.core.timeslots import TimeSlot
from repro.workload.traces import TraceLog


@dataclass(frozen=True)
class ScalingAction:
    """What one control-loop invocation did to the back-end."""

    period_index: int
    at_ms: float
    launched: Mapping[str, int]
    terminated: Mapping[str, int]
    plan: AllocationPlan
    decision: Optional[ModelDecision] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "launched", dict(self.launched))
        object.__setattr__(self, "terminated", dict(self.terminated))


class Autoscaler:
    """Predictive autoscaler built around the adaptive model."""

    def __init__(
        self,
        model: AdaptiveModel,
        provisioner: Provisioner,
        backend: BackendPool,
        *,
        level_for_type: Optional[Mapping[str, int]] = None,
        minimum_per_group: int = 1,
    ) -> None:
        if minimum_per_group < 0:
            raise ValueError(f"minimum_per_group must be >= 0, got {minimum_per_group}")
        self.model = model
        self.provisioner = provisioner
        self.backend = backend
        self.level_for_type = dict(level_for_type) if level_for_type else None
        self.minimum_per_group = minimum_per_group
        self.actions: List[ScalingAction] = []

    def _target_counts(self, plan: AllocationPlan) -> Dict[str, int]:
        """The plan's counts, with the per-group minimum floor applied."""
        counts = dict(plan.counts)
        if self.minimum_per_group == 0:
            return counts
        # Guarantee at least `minimum_per_group` instances per demanded group so
        # the group never disappears entirely between periods.
        groups = {option.acceleration_group for option in self.model.options}
        for group in groups:
            group_types = [
                option.type_name
                for option in self.model.options
                if option.acceleration_group == group
            ]
            existing = sum(counts.get(name, 0) for name in group_types)
            if existing < self.minimum_per_group and group_types:
                cheapest = min(
                    (option for option in self.model.options if option.acceleration_group == group),
                    key=lambda option: option.cost_per_hour,
                )
                counts[cheapest.type_name] = counts.get(cheapest.type_name, 0) + (
                    self.minimum_per_group - existing
                )
        return counts

    def _apply_counts(self, target: Mapping[str, int]) -> "tuple[Dict[str, int], Dict[str, int]]":
        """Launch/terminate instances until the running mix matches ``target``."""
        launched: Dict[str, int] = {}
        terminated: Dict[str, int] = {}
        running = self.provisioner.running_by_type()
        # Terminate surplus instances first so the cap is not hit while scaling up.
        for type_name, running_count in running.items():
            surplus = running_count - target.get(type_name, 0)
            for _ in range(max(surplus, 0)):
                instance = next(
                    inst
                    for inst in self.provisioner.running_instances
                    if inst.instance_type.name == type_name
                )
                self.backend.remove_instance(instance)
                self.provisioner.terminate(instance)
                terminated[type_name] = terminated.get(type_name, 0) + 1
        # Launch the missing instances.
        running = self.provisioner.running_by_type()
        for type_name, wanted in target.items():
            missing = wanted - running.get(type_name, 0)
            for _ in range(max(missing, 0)):
                try:
                    instance = self.provisioner.launch(type_name)
                except ProvisioningError:
                    # The account cap is a hard limit; stop launching.
                    return launched, terminated
                level = (
                    self.level_for_type.get(type_name, instance.acceleration_level)
                    if self.level_for_type
                    else instance.acceleration_level
                )
                self.backend.add_instance(instance, level)
                launched[type_name] = launched.get(type_name, 0) + 1
        return launched, terminated

    def scale_for_slot(self, slot: TimeSlot, at_ms: float) -> ScalingAction:
        """Predict, plan and re-shape the fleet for an already-observed slot.

        The slot must already be recorded in the model's history (via
        ``observe_trace_window`` or ``observe_slot``); the batched scenario
        executor builds its slots directly from arrays and calls this method,
        bypassing the per-record trace log entirely.
        """
        if self.model.can_predict():
            decision = self.model.decide(slot)
            plan = decision.plan
        else:
            # Bootstrap: provision for the workload just observed.
            decision = None
            problem = AllocationProblem(
                options=self.model.options,
                group_workloads=slot.workload_vector(self.model.groups()),
                instance_cap=self.model.instance_cap,
            )
            try:
                plan = IlpAllocator().allocate(problem)
            except AllocationError:
                # Demand already exceeds the cap: saturate it and shed load.
                plan = best_effort_plan(problem)
        target = self._target_counts(plan)
        launched, terminated = self._apply_counts(target)
        action = ScalingAction(
            period_index=len(self.actions),
            at_ms=at_ms,
            launched=launched,
            terminated=terminated,
            plan=plan,
            decision=decision,
        )
        self.actions.append(action)
        return action

    def run_period_end(self, log: TraceLog, period_start_ms: float, period_end_ms: float) -> ScalingAction:
        """Run the control loop for the period ``[period_start_ms, period_end_ms)``."""
        slot = self.model.observe_trace_window(log, period_start_ms, period_end_ms)
        return self.scale_for_slot(slot, period_end_ms)


class ReactiveAutoscaler(Autoscaler):
    """Baseline: provision for the workload just observed (no prediction)."""

    def scale_for_slot(self, slot: TimeSlot, at_ms: float) -> ScalingAction:
        problem = AllocationProblem(
            options=self.model.options,
            group_workloads=slot.workload_vector(self.model.groups()),
            instance_cap=self.model.instance_cap,
        )
        try:
            plan = IlpAllocator().allocate(problem)
        except AllocationError:
            plan = best_effort_plan(problem)
        target = self._target_counts(plan)
        launched, terminated = self._apply_counts(target)
        action = ScalingAction(
            period_index=len(self.actions),
            at_ms=at_ms,
            launched=launched,
            terminated=terminated,
            plan=plan,
            decision=None,
        )
        self.actions.append(action)
        return action
