"""Software-defined flow table: match-action rules for code acceleration.

The paper frames the accelerator as a *software-defined* component: "by using
SDN, no extra instrumentation nor modification in software is required to tune
the response time of an application" (Section VIII).  This module makes that
explicit with the classic SDN abstractions:

* a :class:`FlowRule` matches offloading traffic (by user, by device class, or
  any traffic) and carries the action "route to acceleration group g";
* a :class:`FlowTable` holds prioritised rules and resolves the group for an
  incoming request;
* a :class:`FlowController` is the control-plane: it installs per-user rules
  when the client-side moderator reports a promotion, and can install
  administrator overrides ("everyone on this app gets at least level 2" — the
  minimum-acceleration-as-a-service knob of Section IV-C1).

:class:`FlowTableRouting` adapts a flow table to the
:class:`~repro.sdn.accelerator.RoutingPolicy` interface so the SDN-accelerator
can be driven entirely by flow rules instead of by the per-request
``acceleration_group`` field.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.backend import BackendPool


@dataclass(frozen=True)
class FlowMatch:
    """Match fields of a flow rule.

    ``None`` fields are wildcards.  A rule with both fields ``None`` matches
    every request (a table-miss / default rule).
    """

    user_id: Optional[int] = None
    device_class: Optional[str] = None

    def matches(self, user_id: int, device_class: Optional[str] = None) -> bool:
        """Whether this match covers the given request attributes."""
        if self.user_id is not None and self.user_id != user_id:
            return False
        if self.device_class is not None and self.device_class != device_class:
            return False
        return True

    @property
    def specificity(self) -> int:
        """Number of non-wildcard fields (used to break priority ties)."""
        return int(self.user_id is not None) + int(self.device_class is not None)


@dataclass(frozen=True)
class FlowRule:
    """One match-action entry: route matching traffic to an acceleration group."""

    rule_id: int
    match: FlowMatch
    acceleration_group: int
    priority: int = 0

    def __post_init__(self) -> None:
        if self.acceleration_group < 0:
            raise ValueError(
                f"acceleration_group must be >= 0, got {self.acceleration_group}"
            )


class FlowTable:
    """A prioritised table of flow rules with a default action."""

    def __init__(self, default_group: int = 0) -> None:
        if default_group < 0:
            raise ValueError(f"default_group must be >= 0, got {default_group}")
        self.default_group = default_group
        self._rules: Dict[int, FlowRule] = {}
        self._rule_ids = itertools.count()
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> List[FlowRule]:
        """All installed rules, highest priority (then most specific) first."""
        return sorted(
            self._rules.values(),
            key=lambda rule: (-rule.priority, -rule.match.specificity, rule.rule_id),
        )

    def install(self, match: FlowMatch, acceleration_group: int, priority: int = 0) -> FlowRule:
        """Install a rule and return it."""
        rule = FlowRule(
            rule_id=next(self._rule_ids),
            match=match,
            acceleration_group=acceleration_group,
            priority=priority,
        )
        self._rules[rule.rule_id] = rule
        return rule

    def remove(self, rule_id: int) -> None:
        """Remove a rule by id."""
        if rule_id not in self._rules:
            raise KeyError(f"no flow rule with id {rule_id}")
        del self._rules[rule_id]

    def remove_user_rules(self, user_id: int) -> int:
        """Remove every rule that matches exactly this user; returns the count."""
        to_remove = [
            rule.rule_id for rule in self._rules.values() if rule.match.user_id == user_id
        ]
        for rule_id in to_remove:
            del self._rules[rule_id]
        return len(to_remove)

    def lookup(self, user_id: int, device_class: Optional[str] = None) -> int:
        """Resolve the acceleration group for a request (table-miss -> default)."""
        self.lookups += 1
        for rule in self.rules:
            if rule.match.matches(user_id, device_class):
                return rule.acceleration_group
        self.misses += 1
        return self.default_group

    def rule_for_user(self, user_id: int) -> Optional[FlowRule]:
        """The highest-priority exact-user rule for ``user_id``, if any."""
        user_rules = [rule for rule in self.rules if rule.match.user_id == user_id]
        return user_rules[0] if user_rules else None


class FlowController:
    """The control-plane that keeps the flow table in sync with promotions."""

    def __init__(self, table: FlowTable, *, max_group: int) -> None:
        if max_group < 0:
            raise ValueError(f"max_group must be >= 0, got {max_group}")
        self.table = table
        self.max_group = max_group
        self.promotions_installed = 0

    def set_minimum_level(self, level: int, priority: int = -1) -> FlowRule:
        """Install/replace the administrator's minimum acceleration level.

        The rule matches all traffic at a low priority, so per-user promotion
        rules still override it — this is the "minimum level of code
        acceleration provisioned in an as-a-service fashion" of Section IV-C1.
        """
        if not 0 <= level <= self.max_group:
            raise ValueError(f"level must be in [0, {self.max_group}], got {level}")
        # Replace any previous wildcard rule at the same priority.
        for rule in list(self.table.rules):
            if rule.match.user_id is None and rule.match.device_class is None and rule.priority == priority:
                self.table.remove(rule.rule_id)
        return self.table.install(FlowMatch(), level, priority=priority)

    def on_promotion(self, user_id: int, new_group: int) -> FlowRule:
        """Install the per-user rule reflecting a client-side promotion."""
        if not 0 <= new_group <= self.max_group:
            raise ValueError(f"new_group must be in [0, {self.max_group}], got {new_group}")
        existing = self.table.rule_for_user(user_id)
        if existing is not None and existing.acceleration_group >= new_group:
            return existing
        self.table.remove_user_rules(user_id)
        self.promotions_installed += 1
        return self.table.install(FlowMatch(user_id=user_id), new_group, priority=10)

    def group_for(self, user_id: int, device_class: Optional[str] = None) -> int:
        """Resolve a request through the table (data-plane lookup)."""
        return self.table.lookup(user_id, device_class)


class FlowTableRouting:
    """A :class:`~repro.sdn.accelerator.RoutingPolicy` backed by a flow table.

    The requested group carried by the device is treated as a *hint*: the flow
    table's decision wins, but the result is still clamped to the groups that
    actually have capacity in the back-end pool.
    """

    def __init__(self, controller: FlowController) -> None:
        self.controller = controller
        self._last_user: Optional[int] = None

    def route(self, requested_group: int, pool: BackendPool, rng: np.random.Generator) -> int:
        user_id = self._last_user if self._last_user is not None else -1
        table_group = self.controller.group_for(user_id)
        return pool.clamp_level(max(table_group, requested_group))

    def observe_user(self, user_id: int) -> None:
        """Record the user of the request about to be routed.

        The :class:`~repro.sdn.accelerator.RoutingPolicy` interface only passes
        the requested group, so callers that want per-user flow-table routing
        set the user here immediately before submitting.
        """
        self._last_user = user_id
