"""The SDN-accelerator front-end.

The front-end contains two of the components of Fig. 3:

* the **Request Handler (RH)** — the entry point that accepts an offloading
  request from a mobile device (``SDNAccelerator.submit``), and
* the **Code Offloader (CO)** — the routing step that determines the level of
  acceleration required and forwards the request to the corresponding group
  of back-end instances, logging each processed request into the trace store.

The paper measures the overhead the front-end adds to a request at ≈150 ms
(Fig. 8a), roughly constant across acceleration groups; the default routing
overhead model reproduces that.  Response-time accounting follows the Fig. 7a
decomposition ``T_response = T1 + T2 + T_cloud`` plus the routing overhead.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.cloud.backend import BackendPool
from repro.cloud.server import OffloadOutcome
from repro.network.channel import CommunicationChannel, ResponseTimeBreakdown
from repro.simulation.engine import SimulationEngine
from repro.simulation.stats import OnlineStatistics
from repro.workload.traces import TraceLog


@dataclass(frozen=True)
class RequestRecord:
    """Full accounting of one request processed by the front-end."""

    request_id: int
    user_id: int
    acceleration_group: int
    task_name: str
    arrival_ms: float
    completed_ms: float
    success: bool
    breakdown: Optional[ResponseTimeBreakdown]

    @property
    def response_time_ms(self) -> float:
        """Total response time perceived by the device (0 for dropped requests)."""
        if self.breakdown is None:
            return 0.0
        return self.breakdown.total_ms


class RoutingPolicy(Protocol):
    """Maps a request's requested acceleration group to the group actually used."""

    def route(self, requested_group: int, pool: BackendPool, rng: np.random.Generator) -> int:
        """Return the acceleration group the request should be dispatched to."""
        ...


class AccelerationGroupRouting:
    """The paper's policy: honour the group requested by the device."""

    def route(self, requested_group: int, pool: BackendPool, rng: np.random.Generator) -> int:
        return pool.clamp_level(requested_group)


class RoundRobinRouting:
    """Baseline policy (Section VII-3 contrast): ignore the requested group.

    Requests are spread over all provisioned groups in round-robin order,
    which is what a fixed load balancer would do; user perception is ignored.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, requested_group: int, pool: BackendPool, rng: np.random.Generator) -> int:
        levels = pool.levels
        if not levels:
            raise ValueError("back-end pool is empty")
        level = levels[self._cursor % len(levels)]
        self._cursor += 1
        return level


class DeliveryBuffer:
    """Fused result delivery: a time-ordered buffer replacing ``sdn:deliver`` events.

    With a buffer attached, :meth:`SDNAccelerator._finish` computes the
    delivery instant up front and pushes a finished :class:`RequestRecord`
    here instead of scheduling a per-request engine event — one event per
    request saved on the hot path.  The scenario executors drain the buffer
    at the points where delivery effects become observable (request
    submission, slot boundaries), strictly *before* the current instant, so
    delivery ordering relative to submissions and control-loop reads is
    identical to the event-per-delivery path: at equal timestamps a
    setup-scheduled submission/scale event always preceded a run-time
    scheduled delivery event anyway.  Order among deliveries is
    ``(delivered_ms, push order)``; push order equals the order the old
    delivery events would have been scheduled in, so the tie-break matches
    too.  One buffer can be shared by several accelerators (the multi-site
    executor does): each entry carries its owning accelerator, keeping the
    per-site trace logs and record lists intact while preserving the global
    delivery order the shared per-user moderators observe.
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        delivered_ms: float,
        accelerator: "SDNAccelerator",
        record: RequestRecord,
        battery_level: float,
        on_complete: Optional[Callable[[RequestRecord], None]],
    ) -> None:
        heapq.heappush(
            self._heap,
            (
                delivered_ms,
                next(self._sequence),
                accelerator,
                record,
                battery_level,
                on_complete,
            ),
        )

    @staticmethod
    def _deliver(entry) -> None:
        _, _, accelerator, record, battery_level, on_complete = entry
        accelerator.records.append(record)
        accelerator.trace_log.log(
            timestamp_ms=record.arrival_ms,
            user_id=record.user_id,
            acceleration_group=record.acceleration_group,
            battery_level=battery_level,
            round_trip_time_ms=record.response_time_ms,
        )
        if on_complete is not None:
            on_complete(record)

    def drain_until(self, now_ms: float) -> None:
        """Deliver every buffered result strictly before ``now_ms``."""
        heap = self._heap
        while heap and heap[0][0] < now_ms:
            self._deliver(heapq.heappop(heap))

    def flush(self, horizon_ms: float) -> None:
        """End-of-run flush: deliver results up to and including ``horizon_ms``.

        Entries past the horizon stay undelivered, exactly as their engine
        events would have (the engine stops at the drain horizon).
        """
        heap = self._heap
        while heap and heap[0][0] <= horizon_ms:
            self._deliver(heapq.heappop(heap))


class SDNAccelerator:
    """The cloud-side front-end that routes offloaded code to acceleration groups."""

    def __init__(
        self,
        engine: SimulationEngine,
        backend: BackendPool,
        *,
        channel: Optional[CommunicationChannel] = None,
        trace_log: Optional[TraceLog] = None,
        rng: Optional[np.random.Generator] = None,
        routing_policy: Optional[RoutingPolicy] = None,
        routing_overhead_mean_ms: float = 150.0,
        routing_overhead_std_ms: float = 25.0,
        delivery_buffer: Optional[DeliveryBuffer] = None,
    ) -> None:
        if routing_overhead_mean_ms < 0:
            raise ValueError(
                f"routing_overhead_mean_ms must be >= 0, got {routing_overhead_mean_ms}"
            )
        if routing_overhead_std_ms < 0:
            raise ValueError(
                f"routing_overhead_std_ms must be >= 0, got {routing_overhead_std_ms}"
            )
        self.engine = engine
        self.backend = backend
        self.channel = channel if channel is not None else CommunicationChannel(rng=rng)
        self.trace_log = trace_log if trace_log is not None else TraceLog()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.routing_policy = routing_policy if routing_policy is not None else AccelerationGroupRouting()
        self.routing_overhead_mean_ms = routing_overhead_mean_ms
        self.routing_overhead_std_ms = routing_overhead_std_ms
        self.records: List[RequestRecord] = []
        self.routing_stats = OnlineStatistics()
        self.per_group_routing: Dict[int, List[float]] = {}
        self._request_ids = itertools.count()
        # None keeps the historical event-per-delivery path (figure
        # experiments and unit harnesses); the scenario executors attach a
        # buffer and drain it themselves.
        self.delivery_buffer = delivery_buffer

    # -- internals ------------------------------------------------------------

    def _sample_routing_overhead_ms(self) -> float:
        if self.routing_overhead_std_ms == 0:
            return self.routing_overhead_mean_ms
        sample = self._rng.normal(self.routing_overhead_mean_ms, self.routing_overhead_std_ms)
        return float(max(sample, 1.0))

    # -- public API -----------------------------------------------------------

    def submit(
        self,
        *,
        user_id: int,
        acceleration_group: int,
        work_units: float,
        task_name: str = "",
        battery_level: float = 1.0,
        on_complete: Optional[Callable[[RequestRecord], None]] = None,
    ) -> int:
        """Request Handler entry point: accept and route one offloading request.

        The request is routed immediately (after the simulated routing
        overhead) to the back-end group selected by the routing policy;
        ``on_complete`` fires when the result would arrive back at the mobile
        device, with the full :class:`RequestRecord`.

        Returns the request id assigned by the front-end.
        """
        if work_units <= 0:
            # Validate before sampling so invalid submissions leave the
            # channel/SDN random streams untouched (the historical contract).
            raise ValueError(f"work_units must be positive, got {work_units}")
        hour_of_day = (self.engine.now_ms / 3_600_000.0) % 24.0
        t1_ms = self.channel.sample_t1_ms(hour_of_day)
        t2_ms = self.channel.sample_t2_ms(hour_of_day)
        routing_ms = self._sample_routing_overhead_ms()
        return self.submit_planned(
            user_id=user_id,
            acceleration_group=acceleration_group,
            work_units=work_units,
            t1_ms=t1_ms,
            t2_ms=t2_ms,
            routing_ms=routing_ms,
            task_name=task_name,
            battery_level=battery_level,
            on_complete=on_complete,
        )

    def submit_planned(
        self,
        *,
        user_id: int,
        acceleration_group: int,
        work_units: float,
        t1_ms: float,
        t2_ms: float,
        routing_ms: float,
        task_name: str = "",
        battery_level: float = 1.0,
        jitter_z: Optional[float] = None,
        on_complete: Optional[Callable[[RequestRecord], None]] = None,
    ) -> int:
        """Accept one request whose network/routing samples were pre-drawn.

        This is the entry point of the plan-driven scenario runner: the
        per-request log-normal RTTs, routing overhead and (optionally) the
        service-time jitter draw arrive as arguments, sampled in bulk by
        :mod:`repro.scenarios.plan`, so the front-end performs no scalar RNG
        work on the hot path.  :meth:`submit` delegates here after sampling.
        """
        if work_units <= 0:
            raise ValueError(f"work_units must be positive, got {work_units}")
        request_id = next(self._request_ids)
        arrival_ms = self.engine.now_ms
        # Per-user routing policies (e.g. the flow-table policy) need to know
        # which user the request belongs to before deciding the group.
        observe_user = getattr(self.routing_policy, "observe_user", None)
        if callable(observe_user):
            observe_user(user_id)
        routed_group = self.routing_policy.route(acceleration_group, self.backend, self._rng)
        self.routing_stats.add(routing_ms)
        self.per_group_routing.setdefault(routed_group, []).append(routing_ms)

        # The uplink half of both hops plus the routing step happen before the
        # code starts executing; the downlink half delivers the result.
        uplink_ms = (t1_ms + t2_ms) / 2.0 + routing_ms
        downlink_ms = (t1_ms + t2_ms) / 2.0

        def _dispatch() -> None:
            outcome = self.backend.dispatch(
                routed_group, work_units, _on_cloud_complete, jitter_z=jitter_z
            )
            if outcome is not None:
                # Dropped at admission: the failure is reported back to the
                # device over the downlink immediately.
                self._finish(
                    request_id=request_id,
                    user_id=user_id,
                    group=routed_group,
                    task_name=task_name,
                    arrival_ms=arrival_ms,
                    battery_level=battery_level,
                    breakdown=None,
                    downlink_ms=downlink_ms,
                    on_complete=on_complete,
                )

        def _on_cloud_complete(outcome: OffloadOutcome) -> None:
            breakdown = ResponseTimeBreakdown(
                t1_ms=t1_ms,
                t2_ms=t2_ms,
                routing_ms=routing_ms,
                cloud_ms=outcome.execution_time_ms,
            )
            self._finish(
                request_id=request_id,
                user_id=user_id,
                group=routed_group,
                task_name=task_name,
                arrival_ms=arrival_ms,
                battery_level=battery_level,
                breakdown=breakdown,
                downlink_ms=downlink_ms,
                on_complete=on_complete,
            )

        self.engine.schedule_after(uplink_ms, _dispatch, label="sdn:dispatch")
        return request_id

    def _finish(
        self,
        *,
        request_id: int,
        user_id: int,
        group: int,
        task_name: str,
        arrival_ms: float,
        battery_level: float,
        breakdown: Optional[ResponseTimeBreakdown],
        downlink_ms: float,
        on_complete: Optional[Callable[[RequestRecord], None]],
    ) -> None:
        """Deliver the result (or the failure) back to the mobile device."""
        # The downlink legs (back-end -> front-end -> mobile) complete after
        # the remaining half of the communication delays.
        remaining = downlink_ms if breakdown is not None else 0.0
        if self.delivery_buffer is not None:
            delivered_ms = self.engine.now_ms + remaining
            record = RequestRecord(
                request_id=request_id,
                user_id=user_id,
                acceleration_group=group,
                task_name=task_name,
                arrival_ms=arrival_ms,
                completed_ms=delivered_ms,
                success=breakdown is not None,
                breakdown=breakdown,
            )
            self.delivery_buffer.push(
                delivered_ms, self, record, battery_level, on_complete
            )
            return

        def _deliver() -> None:
            record = RequestRecord(
                request_id=request_id,
                user_id=user_id,
                acceleration_group=group,
                task_name=task_name,
                arrival_ms=arrival_ms,
                completed_ms=self.engine.now_ms,
                success=breakdown is not None,
                breakdown=breakdown,
            )
            self.records.append(record)
            self.trace_log.log(
                timestamp_ms=arrival_ms,
                user_id=user_id,
                acceleration_group=group,
                battery_level=battery_level,
                round_trip_time_ms=record.response_time_ms,
            )
            if on_complete is not None:
                on_complete(record)

        self.engine.schedule_after(remaining, _deliver, label="sdn:deliver")

    # -- reporting -------------------------------------------------------------

    @property
    def processed_requests(self) -> int:
        """Number of requests fully processed (successful or dropped)."""
        return len(self.records)

    def success_rate(self) -> float:
        """Fraction of processed requests that completed successfully."""
        if not self.records:
            raise ValueError("no requests processed yet")
        successes = sum(1 for record in self.records if record.success)
        return successes / len(self.records)

    def mean_routing_overhead_ms(self) -> float:
        """Mean front-end routing overhead (the ≈150 ms of Fig. 8a)."""
        return self.routing_stats.mean

    def response_times_by_group(self) -> Dict[int, List[float]]:
        """Successful response times keyed by acceleration group."""
        grouped: Dict[int, List[float]] = {}
        for record in self.records:
            if record.success:
                grouped.setdefault(record.acceleration_group, []).append(
                    record.response_time_ms
                )
        return grouped

    def records_for_user(self, user_id: int) -> List[RequestRecord]:
        """All records of one user, in completion order."""
        return [record for record in self.records if record.user_id == user_id]
