"""SDN-accelerator front-end.

The SDN-accelerator is the gateway of Fig. 2: it receives the offloading
workload, determines the level of acceleration each request needs and routes
it to the corresponding group of back-end instances, logging every processed
request.

* :mod:`repro.sdn.accelerator` — the front-end itself: the Request Handler
  entry point, the Code Offloader routing step (with its ≈150 ms overhead,
  Fig. 8a), trace logging and per-request response-time accounting.
* :mod:`repro.sdn.autoscaler` — the control loop that, at the end of every
  provisioning period, feeds the trace log to the
  :class:`~repro.core.model.AdaptiveModel` and re-provisions the back-end to
  the returned allocation plan.
* :mod:`repro.sdn.flowtable` — the software-defined match-action layer: flow
  rules mapping users (or whole device classes) to acceleration groups, and
  the controller that installs rules on promotions and administrator
  overrides.
"""

from repro.sdn.accelerator import RequestRecord, RoutingPolicy, SDNAccelerator
from repro.sdn.autoscaler import Autoscaler, ReactiveAutoscaler, ScalingAction
from repro.sdn.flowtable import (
    FlowController,
    FlowMatch,
    FlowRule,
    FlowTable,
    FlowTableRouting,
)

__all__ = [
    "Autoscaler",
    "FlowController",
    "FlowMatch",
    "FlowRule",
    "FlowTable",
    "FlowTableRouting",
    "ReactiveAutoscaler",
    "RequestRecord",
    "RoutingPolicy",
    "SDNAccelerator",
    "ScalingAction",
]
