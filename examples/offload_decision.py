"""Should this device offload this task?  (The Section II-A decision rule.)

The example exercises the mobile substrate with *really executed* tasks: for a
range of device classes (wearable to flagship phone) and the pool of 10
offloadable algorithms, it compares the estimated local execution time with
the expected remote response time (cloud execution at a given acceleration
level plus LTE round trips and the SDN routing overhead) and prints the
offloading decision — the classic "offload iff remote is cheaper" rule.

It also really runs each algorithm once locally so you can see the pool is not
a mock.

Run with::

    python examples/offload_decision.py
"""

import time

import numpy as np

from repro import DEFAULT_CATALOG, DEFAULT_TASK_POOL
from repro.mobile.device import DEVICE_PROFILES, MobileDevice
from repro.network.latency import lte_latency_model


def expected_remote_ms(task, instance_type, rng) -> float:
    """Cloud execution + LTE round trip + the ≈150 ms SDN routing overhead."""
    cloud_ms = instance_type.profile.service_time_ms(task.work_units, concurrency=1)
    rtt_ms = lte_latency_model().sample_rtt_ms(rng)
    return cloud_ms + rtt_ms + 150.0


def main() -> None:
    rng = np.random.default_rng(0)
    level1 = DEFAULT_CATALOG.get("t2.nano")
    level3 = DEFAULT_CATALOG.get("m4.10xlarge")

    print("Really executing each task from the pool once (pure-Python implementations):")
    for task in DEFAULT_TASK_POOL:
        start = time.perf_counter()
        task.execute(rng)
        elapsed_ms = 1000.0 * (time.perf_counter() - start)
        print(f"  {task.name:<16} executed locally in {elapsed_ms:7.1f} ms "
              f"(modelled cost {task.work_units:6.0f} work units)")

    print("\nOffloading decision per device class (remote = acceleration level 1 / level 3):")
    header = f"  {'task':<16} {'device':<16} {'local [ms]':>12} {'remote L1 [ms]':>15} {'remote L3 [ms]':>15}  decision"
    print(header)
    for task_name in ("minimax", "nqueens", "quicksort", "fibonacci"):
        task = DEFAULT_TASK_POOL.get(task_name)
        for profile_name in ("wearable", "budget-phone", "flagship-phone"):
            device = MobileDevice(user_id=0, profile=DEVICE_PROFILES[profile_name], acceleration_group=1)
            local_ms = device.local_execution_time_ms(task)
            remote_l1 = expected_remote_ms(task, level1, rng)
            remote_l3 = expected_remote_ms(task, level3, rng)
            decision = "offload" if device.should_offload(task, remote_l1) else "run locally"
            print(f"  {task.name:<16} {profile_name:<16} {local_ms:>12.0f} {remote_l1:>15.0f} "
                  f"{remote_l3:>15.0f}  {decision}")

    print("\nHeavy decision-making tasks (minimax, n-queens) are worth offloading even")
    print("from flagship phones, while short tasks only pay off for wearables — the")
    print("heterogeneity that motivates per-device acceleration groups in the paper.")


if __name__ == "__main__":
    main()
