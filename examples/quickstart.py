"""Quickstart: predict the next hour's workload and allocate instances for it.

This is the smallest end-to-end use of the library's core contribution:

1. describe the instance types available to the back-end (``InstanceOption``),
2. feed the adaptive model the per-hour workload history (``TimeSlot``),
3. ask it to predict the next hour and compute the cheapest allocation.

Run with::

    python examples/quickstart.py
"""

from repro import AdaptiveModel, InstanceOption, TimeSlot


def main() -> None:
    # The back-end can run three instance types, one per acceleration group.
    # ``capacity`` is how many users one instance serves per hour while
    # meeting the target response time (K_s in the paper, found by
    # benchmarking — see examples/characterize_cloud.py).
    options = [
        InstanceOption("t2.nano", acceleration_group=1, cost_per_hour=0.0063, capacity=10),
        InstanceOption("t2.large", acceleration_group=2, cost_per_hour=0.101, capacity=40),
        InstanceOption("m4.4xlarge", acceleration_group=3, cost_per_hour=0.888, capacity=150),
    ]
    model = AdaptiveModel(options, instance_cap=20)

    # Hourly workload history: how many users offloaded at each acceleration
    # level during each of the past hours (normally built from the trace log).
    hourly_workloads = [
        {1: 12, 2: 3, 3: 0},
        {1: 20, 2: 6, 3: 1},
        {1: 35, 2: 12, 3: 4},
        {1: 41, 2: 18, 3: 6},
        {1: 30, 2: 22, 3: 9},
    ]
    for hour, counts in enumerate(hourly_workloads):
        model.observe_slot(TimeSlot.from_counts(hour, counts))

    decision = model.decide()
    print("Predicted workload for the next hour (users per acceleration group):")
    for group, users in sorted(decision.predicted_workloads.items()):
        print(f"  group {group}: {users} users")

    plan = decision.plan
    print("\nCost-optimal allocation for that workload:")
    for type_name, count in sorted(plan.non_zero_counts().items()):
        print(f"  {count} x {type_name}")
    print(f"  total instances: {plan.total_instances} (account cap 20)")
    print(f"  hourly cost: ${plan.total_cost:.4f}  [solver: {plan.solver}]")


if __name__ == "__main__":
    main()
