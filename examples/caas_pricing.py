"""Code Acceleration as a Service: pricing, energy and parallelization.

Section VII of the paper discusses three directions beyond the evaluated
system: selling acceleration levels as a service (CaaS), the interaction with
device battery life, and surpassing the single-server acceleration limit with
code parallelization.  This example exercises all three extension modules:

1. price three subscription tiers (one per acceleration group), size the
   back-end with the paper's ILP allocator and report monthly margin and the
   break-even subscriber count per tier;
2. quantify how much device energy each tier saves for a heavy task (the
   faster the response, the less time the LTE radio stays up);
3. show where parallelizing the minimax task across level-2 instances beats
   even the fastest single server.

Run with::

    python examples/caas_pricing.py
"""

from repro import DEFAULT_CATALOG, DEFAULT_TASK_POOL, build_options_from_catalog
from repro.cloud.parallelization import (
    ParallelizableTask,
    optimal_worker_count,
    parallel_execution_time_ms,
    speedup_curve,
)
from repro.core.pricing import AccelerationPlan, CaaSPricingModel
from repro.mobile.device import DEVICE_PROFILES
from repro.mobile.energy import lte_energy_model


def main() -> None:
    task = DEFAULT_TASK_POOL.get("minimax")
    catalog = DEFAULT_CATALOG.subset(["t2.nano", "t2.large", "m4.4xlarge"])
    level_for_type = {"t2.nano": 1, "t2.large": 2, "m4.4xlarge": 3}

    # --- 1. Subscription tiers and back-end economics -----------------------
    options = []
    for option in build_options_from_catalog(catalog, work_units=task.work_units, response_threshold_ms=5000.0):
        options.append(
            type(option)(
                type_name=option.type_name,
                acceleration_group=level_for_type[option.type_name],
                cost_per_hour=option.cost_per_hour,
                capacity=option.capacity,
            )
        )
    plans = [
        AccelerationPlan("basic (level 1)", acceleration_group=1, monthly_price_per_user=0.99),
        AccelerationPlan("fast (level 2)", acceleration_group=2, monthly_price_per_user=2.99),
        AccelerationPlan("turbo (level 3)", acceleration_group=3, monthly_price_per_user=6.99),
    ]
    pricing = CaaSPricingModel(plans, options, instance_cap=20)

    subscribers = {1: 400, 2: 150, 3: 40}
    report = pricing.monthly_report(subscribers, peak_concurrency_fraction=0.2)
    print("CaaS monthly economics for", subscribers, "subscribers per tier:")
    print(f"  revenue:            ${report.monthly_revenue:10.2f}")
    print(f"  provisioning cost:  ${report.monthly_provisioning_cost:10.2f} "
          f"({report.plan.non_zero_counts()})")
    print(f"  margin:             ${report.monthly_margin:10.2f} "
          f"({'profitable' if report.is_profitable else 'loss-making'})")
    print("\nBreak-even subscribers per tier (20% peak concurrency):")
    for plan in plans:
        break_even = pricing.break_even_subscribers(plan.acceleration_group)
        print(f"  {plan.name:<16} {break_even} subscribers")

    # --- 2. Energy: what a faster tier buys the device ----------------------
    energy = lte_energy_model()
    device = DEVICE_PROFILES["budget-phone"]
    print("\nDevice energy per minimax request on a budget phone (LTE radio):")
    local = energy.local_energy_joules(device, task)
    print(f"  run locally:                {local:6.2f} J")
    for level, response_ms in ((1, 2500.0), (2, 1850.0), (3, 1400.0)):
        remote = energy.offload_energy_joules(response_ms)
        print(f"  offload at level {level} (~{response_ms:.0f} ms): {remote:6.2f} J "
              f"(saves {local - remote:5.2f} J)")

    # --- 3. Parallelization: beating the single-server limit ----------------
    parallel_task = ParallelizableTask(task=task, parallel_fraction=0.9)
    level2 = DEFAULT_CATALOG.get("t2.large").profile
    level4 = DEFAULT_CATALOG.get("c4.8xlarge").profile
    best = optimal_worker_count(parallel_task, level2)
    print("\nParallelizing minimax across level-2 (t2.large) workers:")
    for workers, speedup in speedup_curve(parallel_task, level2, (1, 2, 4, 8, 16)).items():
        time_ms = parallel_execution_time_ms(parallel_task, level2, workers)
        print(f"  {workers:>2} workers: {time_ms:7.0f} ms  ({speedup:.2f}x)")
    print(f"  best single server (level 4): {level4.service_time_ms(task.work_units, 1):7.0f} ms")
    print(f"  optimal worker count: {best} — parallelization surpasses the single-server "
          "acceleration limit, as Section VII-1 anticipates.")


if __name__ == "__main__":
    main()
