"""Characterize cloud instance types into acceleration levels (Section VI-A).

The example reproduces the paper's benchmarking procedure on the simulated
catalog: each instance type is stressed with 1-100 concurrent users offloading
random tasks, the measured capacities sort the servers into acceleration
groups, and the static-minimax speed-up between groups is reported (the
Fig. 4 / Fig. 5 / Fig. 6 pipeline).

Run with::

    python examples/characterize_cloud.py
"""

from repro import DEFAULT_CATALOG
from repro.analysis.characterization import (
    benchmark_catalog,
    measured_capacities,
    measured_speed_factors,
)
from repro.core.acceleration import characterize_instances
from repro.simulation.randomness import RandomStreams


def main() -> None:
    streams = RandomStreams(seed=0)
    types = ["t2.micro", "t2.nano", "t2.small", "t2.medium", "t2.large", "m4.10xlarge"]

    print("Benchmarking instance types with 1-100 concurrent users ...")
    benchmarks = benchmark_catalog(
        DEFAULT_CATALOG,
        rng=streams.stream("benchmark"),
        samples_per_level=200,
        type_names=types,
    )

    print("\nMean response time [ms] by concurrent users (Fig. 4):")
    header = ["users"] + types
    print("  " + "  ".join(f"{h:>12}" for h in header))
    sweep = benchmarks[types[0]].concurrencies
    for concurrency in sweep:
        row = [f"{concurrency:>12}"]
        for name in types:
            row.append(f"{benchmarks[name].mean_response_ms()[concurrency]:>12.0f}")
        print("  " + "  ".join(row))

    threshold_ms = 1000.0
    capacities = measured_capacities(benchmarks, threshold_ms)
    speeds = measured_speed_factors(benchmarks)
    characterization = characterize_instances(
        DEFAULT_CATALOG.subset(types),
        response_threshold_ms=threshold_ms,
        measured_capacities=capacities,
        measured_speed_factors=speeds,
    )

    print(f"\nAcceleration groups (capacity = users served under {threshold_ms:.0f} ms):")
    for group in characterization.groups:
        members = ", ".join(group.instance_types)
        print(f"  level {group.level}: {members}  (capacity ≈ {group.capacity:.1f} users)")

    print("\nNote the t2.nano / t2.micro anomaly (Fig. 6): the free-tier micro")
    print("degrades faster than the nominally smaller nano, so it lands in group 0.")

    print("\nAcceleration ratios on the static minimax task (Fig. 5):")
    ratios = characterization
    for higher, lower in [(2, 1), (3, 1), (3, 2)]:
        try:
            print(f"  level {higher} vs level {lower}: {ratios.acceleration_ratio(higher, lower):.2f}x")
        except KeyError:
            pass


if __name__ == "__main__":
    main()
