"""Workload forecasting and cost-aware autoscaling over a synthetic day.

This example focuses on the adaptive model in isolation (no discrete-event
simulation): it synthesises a multi-day hourly workload with a realistic
recurring daily pattern, replays it through the edit-distance predictor and
the ILP allocator hour by hour, and compares the provisioning cost and
under-provisioning rate against two baselines:

* a **reactive** controller that provisions for the hour that just ended, and
* a **static over-provisioning** controller sized for twice the peak.

Run with::

    python examples/workload_forecasting.py
"""

import numpy as np

from repro import AdaptiveModel, InstanceOption, prediction_accuracy
from repro.core.allocation import AllocationProblem, IlpAllocator, OverProvisioningAllocator
from repro.experiments.figure_prediction import synthesize_slot_history
from repro.simulation.randomness import RandomStreams

OPTIONS = [
    InstanceOption("t2.nano", acceleration_group=1, cost_per_hour=0.0063, capacity=10),
    InstanceOption("t2.large", acceleration_group=2, cost_per_hour=0.101, capacity=40),
    InstanceOption("m4.4xlarge", acceleration_group=3, cost_per_hour=0.888, capacity=150),
]


def plan_covers(plan, slot) -> bool:
    """Whether an allocation plan covers the realised per-group workload."""
    return all(
        plan.group_capacities.get(group, 0.0) >= slot.workload(group)
        for group in slot.group_ids
        if slot.workload(group) > 0
    )


def main() -> None:
    streams = RandomStreams(seed=2)
    period_slots = 24
    history = synthesize_slot_history(
        streams.stream("workload"), hours=96, population=120, period_slots=period_slots
    )

    from repro.core.prediction import WorkloadPredictor
    from repro.core.timeslots import TimeSlotHistory

    predictive_model = AdaptiveModel(
        OPTIONS, predictor=WorkloadPredictor(TimeSlotHistory(), strategy="successor", min_history=2)
    )
    allocator = IlpAllocator()
    overprovisioner = OverProvisioningAllocator(headroom=2.0)

    peak = {group: max(slot.workload(group) for slot in history) for group in history.group_ids()}
    static_plan = overprovisioner.allocate(
        AllocationProblem(options=tuple(OPTIONS), group_workloads=peak, instance_cap=50)
    )

    costs = {"predictive": 0.0, "reactive": 0.0, "static-overprovision": 0.0}
    misses = {"predictive": 0, "reactive": 0}
    accuracies = []
    # Compare the controllers only after the model has seen one full day —
    # the paper's bootstrap phase.
    warmup_slots = period_slots + 1
    compared_hours = 0

    for index, slot in enumerate(history):
        predictive_model.observe_slot(slot)
        if index + 1 >= len(history) or index + 1 < warmup_slots:
            continue
        next_slot = history[index + 1]
        compared_hours += 1
        # Predictive controller: allocate for the model's forecast.
        decision = predictive_model.decide(slot)
        accuracies.append(prediction_accuracy(decision.prediction.predicted_slot, next_slot))
        costs["predictive"] += decision.plan.total_cost
        misses["predictive"] += 0 if plan_covers(decision.plan, next_slot) else 1
        # Reactive controller: allocate for what just happened.
        reactive_plan = allocator.allocate(
            AllocationProblem(options=tuple(OPTIONS), group_workloads=slot.workload_vector(), instance_cap=50)
        )
        costs["reactive"] += reactive_plan.total_cost
        misses["reactive"] += 0 if plan_covers(reactive_plan, next_slot) else 1
        # Static controller pays its fixed mix every hour.
        costs["static-overprovision"] += static_plan.total_cost

    print(f"Replayed {compared_hours} provisioning hours (after a one-day bootstrap) over a "
          f"synthetic 4-day workload\n(population 120, 3 acceleration groups).\n")
    print(f"Mean workload-prediction accuracy: {100.0 * np.mean(accuracies):.1f}% "
          f"(the paper reports ≈87.5%)\n")
    print(f"{'controller':<24} {'total cost [$]':>15} {'under-provisioned hours':>25}")
    print(f"{'predictive (paper)':<24} {costs['predictive']:>15.2f} {misses['predictive']:>25}")
    print(f"{'reactive':<24} {costs['reactive']:>15.2f} {misses['reactive']:>25}")
    print(f"{'static-overprovision':<24} {costs['static-overprovision']:>15.2f} {'0 (by construction)':>25}")
    print("\nThe predictive controller matches or beats the reactive controller's cost while")
    print("under-provisioning far fewer hours, and costs much less than static")
    print("over-provisioning — the trade-off the paper's allocation model targets.")


if __name__ == "__main__":
    main()
