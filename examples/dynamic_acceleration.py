"""Dynamic code acceleration for a population of mobile users (Section VI-C).

This example runs the full system — 100 mobile devices offloading the static
minimax task through the SDN-accelerator, the 1/50 client-side promotion rule,
and the adaptive model re-provisioning the back-end every hour — and prints
the user-perception results behind Fig. 9 and Fig. 10b/10c:

* the response time perceived by a user that was never promoted,
* the response time perceived by a user promoted to the top group,
* the population-wide trend as resources are allocated, and
* the promotion summary with the per-group mean response times.

Run with::

    python examples/dynamic_acceleration.py
"""

from repro.experiments import run_dynamic_acceleration


def main() -> None:
    print("Running the dynamic acceleration experiment (2 simulated hours, 100 users) ...")
    result = run_dynamic_acceleration(
        seed=1, users=100, duration_hours=2.0, target_requests=6000
    )

    print(f"\nProcessed {len(result.records)} offloading requests "
          f"({100.0 * result.success_rate():.1f}% successful)")
    print(f"Provisioning cost for the run: ${result.total_cost:.2f}")

    print("\nMean perceived response time per acceleration group:")
    for group, mean in sorted(result.mean_response_by_group().items()):
        print(f"  group {group} ({result.group_types[group]}): {mean:.0f} ms")

    stable = result.stable_user()
    stable_series = result.user_series(stable)
    print(f"\nUser {stable} was never promoted (Fig. 9b analogue):")
    print(f"  {len(stable_series)} requests, "
          f"mean response {sum(p['response_time_ms'] for p in stable_series) / len(stable_series):.0f} ms")

    try:
        promoted = result.fully_promoted_user()
        series = result.user_series(promoted)
        print(f"\nUser {promoted} was promoted to the top group (Fig. 9c analogue):")
        for point in series[:: max(len(series) // 10, 1)]:
            print(f"  request {point['request_index']:>3}  group {point['acceleration_group']}  "
                  f"{point['response_time_ms']:.0f} ms")
    except ValueError:
        print("\nNo user reached the top group in this run (try a longer duration).")

    print("\nPopulation trend (mean response per progress window, Fig. 10b analogue):")
    for index, mean in enumerate(result.mean_response_by_window(8)):
        print(f"  window {index}: {mean:.0f} ms")

    promotions = sum(1 for device in result.devices.values() if device.promotions)
    print(f"\n{promotions} of {len(result.devices)} users were promoted at least once (Fig. 10c).")
    print("Hourly scaling actions taken by the adaptive model:")
    for action in result.scaling_actions:
        print(f"  hour {action.period_index + 1}: launched {dict(action.launched) or '{}'}, "
              f"terminated {dict(action.terminated) or '{}'}")


if __name__ == "__main__":
    main()
