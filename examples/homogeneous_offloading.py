"""The homogeneous offloading model end to end (Fig. 1a of the paper).

This example registers two real methods (full-depth tic-tac-toe minimax and a
Fibonacci micro-task) in a shared method registry, creates a surrogate runtime
(the stand-in for the paper's Dalvik-x86 instance) and an offloading client
for three device classes, and then invokes the methods.  For every invocation
the client estimates local and remote execution time, applies the Section II-A
decision rule, and *really executes* the method on the chosen side — the
serialized application state travels to the surrogate exactly as in the
homogeneous model.

Run with::

    python examples/homogeneous_offloading.py
"""

from repro.cloud.catalog import get_instance_type
from repro.mobile.device import DEVICE_PROFILES
from repro.mobile.tasks import fibonacci, minimax_best_move
from repro.offloading import MethodRegistry, OffloadingClient, SurrogateRuntime


def build_registry() -> MethodRegistry:
    """The offloadable methods, present identically on device and surrogate."""
    registry = MethodRegistry()
    registry.register("minimax", minimax_best_move, work_units=2000.0, payload_hint_bytes=256)
    registry.register("fibonacci", fibonacci, work_units=40.0, payload_hint_bytes=32)
    return registry


def main() -> None:
    registry = build_registry()
    instance = get_instance_type("m4.10xlarge")
    surrogate = SurrogateRuntime(registry, instance_type_name=instance.name)

    print("Offloadable methods registered on both sides:", ", ".join(registry.names))
    print(f"Surrogate runtime: acceleration level {instance.acceleration_level} ({instance.name})\n")

    board = [1, 1, 0,
             -1, -1, 0,
             0, 0, 0]

    for device_name in ("wearable", "budget-phone", "flagship-phone"):
        client = OffloadingClient(
            registry,
            DEVICE_PROFILES[device_name],
            surrogate,
            instance,
            expected_rtt_ms=40.0,
            routing_overhead_ms=150.0,
        )
        print(f"--- {device_name} ---")
        for method, args in (("minimax", (board, 1)), ("fibonacci", (30,))):
            report = client.invoke(method, *args, app_metadata={"app": "demo"})
            where = "OFFLOADED" if report.offloaded else "ran locally"
            print(
                f"  {method:<10} {where:<12} "
                f"(est. local {report.estimated_local_ms:7.0f} ms, "
                f"est. remote {report.estimated_remote_ms:6.0f} ms, "
                f"payload {report.payload_bytes:4d} B) -> result {report.value}"
            )
        print(f"  decisions: {client.offloaded_count} offloaded, {client.local_count} local\n")

    print(f"The surrogate handled {len(surrogate.handled_processes)} requests, one process each —")
    print("the same per-request dalvikvm process model the paper's Dalvik-x86 image uses.")


if __name__ == "__main__":
    main()
